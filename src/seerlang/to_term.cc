#include "seerlang/to_term.h"

#include <set>

#include "ir/ops.h"
#include "ir/printer.h"
#include "seerlang/encoding.h"
#include "support/error.h"

namespace seer::sl {

using namespace ir;
using eg::makeTerm;
using eg::TermPtr;

namespace {

class Translator
{
  public:
    Translation
    run(Operation &func)
    {
        SEER_ASSERT(isa(func, opnames::kFunc), "funcToTerm on non-func");
        if (func.hasAttr("result_type")) {
            fatal("SeerLang: functions returning values are not "
                  "supported; return through memref arguments");
        }
        out_.func_name = func.strAttr("sym_name");
        Block &body = func.region(0).block();
        for (size_t i = 0; i < body.numArgs(); ++i) {
            Value arg = body.arg(i);
            std::string name = arg.impl()->nameHint().empty()
                                   ? "a" + std::to_string(i)
                                   : arg.impl()->nameHint();
            out_.args.emplace_back(name, arg.type());
            values_[arg.impl()] =
                makeTerm(encodeArg(name, arg.type()));
        }
        TermPtr body_term = translateBlock(body);
        out_.term =
            makeTerm(funcSymbol(out_.func_name), {body_term});
        return std::move(out_);
    }

    TermPtr
    translateStatementOnly(Operation &op)
    {
        return translateStatement(op);
    }

  private:
    TermPtr
    translateBlock(Block &block)
    {
        std::vector<TermPtr> statements;
        for (const auto &op : block.ops()) {
            if (isTerminator(*op)) {
                if (op->numOperands() > 0) {
                    fatal("SeerLang: value-carrying terminator in "
                          "statement context: " + toString(*op));
                }
                continue;
            }
            if (auto stmt = translateStatement(*op))
                statements.push_back(stmt);
        }
        if (statements.empty())
            return makeTerm(nopSymbol());
        TermPtr chain = statements.back();
        for (size_t i = statements.size() - 1; i-- > 0;)
            chain = makeTerm(seqSymbol(), {statements[i], chain});
        return chain;
    }

    /**
     * Translate one op in statement position. Pure ops return nullptr
     * (they are embedded in consumers on demand); effectful ops return
     * their statement term.
     */
    TermPtr
    translateStatement(Operation &op)
    {
        const std::string &name = op.nameStr();
        if (name == opnames::kLoad)
            return translateLoad(op);
        if (name == opnames::kStore) {
            std::vector<TermPtr> children{valueTerm(op.operand(0)),
                                          valueTerm(op.operand(1))};
            for (size_t i = 2; i < op.numOperands(); ++i)
                children.push_back(valueTerm(op.operand(i)));
            return makeTerm(encodeStore(freshTag()),
                            std::move(children));
        }
        if (name == opnames::kAlloc) {
            // Preserve buffer identity across round trips: an alloc's
            // tag IS the buffer, so a rewritten subterm must keep
            // referring to the same one.
            std::string tag = op.hasAttr("seer.tag")
                                  ? op.strAttr("seer.tag")
                                  : freshTag();
            TermPtr term =
                makeTerm(encodeAlloc(op.result().type(), tag));
            values_[op.result().impl()] = term;
            return term;
        }
        if (name == opnames::kAffineFor)
            return translateFor(op);
        if (name == opnames::kIf)
            return translateIf(op);
        if (name == opnames::kWhile)
            return translateWhile(op);
        if (name == opnames::kCall)
            fatal("SeerLang: func.call is not supported");
        const OpInfo &info = opInfo(op.name());
        if (info.isPure)
            return nullptr; // embedded on demand
        fatal("SeerLang: unsupported statement op " + name);
    }

    TermPtr
    translateLoad(Operation &op)
    {
        std::vector<TermPtr> children{valueTerm(op.operand(0))};
        for (size_t i = 1; i < op.numOperands(); ++i)
            children.push_back(valueTerm(op.operand(i)));
        TermPtr term =
            makeTerm(encodeLoad(freshTag()), std::move(children));
        values_[op.result().impl()] = term;
        return term;
    }

    TermPtr
    boundToTerm(const AffineBound &bound)
    {
        Type index = Type::index();
        TermPtr acc;
        for (const auto &[value, coeff] : bound.terms) {
            TermPtr piece = valueTerm(value);
            if (coeff != 1) {
                piece = makeTerm(
                    encodeOp(std::string(opnames::kMulI), {"index"}),
                    {piece,
                     makeTerm(encodeIntConst(coeff, index))});
            }
            acc = acc ? makeTerm(encodeOp(std::string(opnames::kAddI),
                                          {"index"}),
                                 {acc, piece})
                      : piece;
        }
        TermPtr constant = makeTerm(encodeIntConst(bound.constant, index));
        if (!acc)
            return constant;
        if (bound.constant == 0)
            return acc;
        return makeTerm(encodeOp(std::string(opnames::kAddI), {"index"}),
                        {acc, constant});
    }

    TermPtr
    translateFor(Operation &op)
    {
        std::string iv_name = uniqueIvName(
            inductionVar(op).impl()->nameHint());
        // Preserve an existing loop id (registry key) across round
        // trips; only brand-new loops get fresh ids.
        std::string loop_id = op.hasAttr("seer.loop_id")
                                  ? op.strAttr("seer.loop_id")
                                  : freshLoopId();
        out_.loops[loop_id] = &op;

        TermPtr lb = boundToTerm(getLowerBound(op));
        TermPtr ub = boundToTerm(getUpperBound(op));
        TermPtr step =
            makeTerm(encodeIntConst(getStep(op), Type::index()));

        Block &body = op.region(0).block();
        values_[body.arg(0).impl()] = makeTerm(encodeVar(iv_name));
        TermPtr body_term = translateBlock(body);
        return makeTerm(encodeFor(iv_name, loop_id),
                        {lb, ub, step, body_term});
    }

    TermPtr
    translateIf(Operation &op)
    {
        if (op.numResults() > 0) {
            fatal("SeerLang: value-yielding scf.if is not supported; "
                  "run if-conversion first");
        }
        TermPtr cond = valueTerm(op.operand(0));
        TermPtr then_term = translateBlock(op.region(0).block());
        TermPtr else_term = translateBlock(op.region(1).block());
        return makeTerm(ifSymbol(), {cond, then_term, else_term});
    }

    TermPtr
    translateWhile(Operation &op)
    {
        Block &cond_block = op.region(0).block();
        // Condition region: effects first, then the condition value.
        std::vector<TermPtr> cond_statements;
        TermPtr cond_value;
        for (const auto &inner : cond_block.ops()) {
            if (isa(*inner, opnames::kCondition)) {
                cond_value = valueTerm(inner->operand(0));
                break;
            }
            if (auto stmt = translateStatement(*inner))
                cond_statements.push_back(stmt);
        }
        SEER_ASSERT(cond_value, "scf.while without condition");
        TermPtr cond_chain;
        if (cond_statements.empty()) {
            cond_chain = makeTerm(nopSymbol());
        } else {
            cond_chain = cond_statements.back();
            for (size_t i = cond_statements.size() - 1; i-- > 0;) {
                cond_chain = makeTerm(seqSymbol(),
                                      {cond_statements[i], cond_chain});
            }
        }
        TermPtr body_term = translateBlock(op.region(1).block());
        return makeTerm(encodeWhile(freshTag()),
                        {cond_chain, cond_value, body_term});
    }

    TermPtr
    valueTerm(Value v)
    {
        auto it = values_.find(v.impl());
        if (it != values_.end())
            return it->second;
        Operation *def = v.definingOp();
        if (!def) {
            fatal("SeerLang: unmapped block argument (is a while loop "
                  "iv escaping?)");
        }
        const std::string &name = def->nameStr();
        TermPtr term;
        if (name == opnames::kConstant) {
            const Attribute &value = def->attr("value");
            term = value.isInt()
                       ? makeTerm(encodeIntConst(value.asInt(),
                                                 v.type()))
                       : makeTerm(encodeFloatConst(value.asFloat()));
        } else if (name == opnames::kCmpI || name == opnames::kCmpF) {
            term = makeTerm(
                encodeOp(name, {def->strAttr("predicate"),
                                def->operand(0).type().str()}),
                {valueTerm(def->operand(0)),
                 valueTerm(def->operand(1))});
        } else if (name == opnames::kExtSI || name == opnames::kExtUI ||
                   name == opnames::kTruncI ||
                   name == opnames::kIndexCast ||
                   name == opnames::kSIToFP ||
                   name == opnames::kFPToSI) {
            term = makeTerm(
                encodeOp(name, {def->operand(0).type().str(),
                                v.type().str()}),
                {valueTerm(def->operand(0))});
        } else if (opInfo(def->name()).isPure &&
                   def->numRegions() == 0 && def->numResults() == 1) {
            std::vector<TermPtr> children;
            for (Value operand : def->operands())
                children.push_back(valueTerm(operand));
            term = makeTerm(encodeOp(name, {v.type().str()}),
                            std::move(children));
        } else {
            fatal("SeerLang: cannot express value defined by " + name);
        }
        values_[v.impl()] = term;
        return term;
    }

    std::string
    uniqueIvName(const std::string &hint)
    {
        std::string base = hint.empty() ? "i" : hint;
        std::string candidate = base;
        int suffix = 0;
        while (!iv_names_.insert(candidate).second)
            candidate = base + "_" + std::to_string(++suffix);
        return candidate;
    }

    Translation out_;
    std::map<ValueImpl *, TermPtr> values_;
    std::set<std::string> iv_names_;
};

} // namespace

Translation
funcToTerm(Operation &func)
{
    return Translator().run(func);
}

TermPtr
statementToTerm(Operation &op)
{
    Translator translator;
    // Map enclosing func args / loop ivs are not available here; this
    // entry point is for self-contained statements in tests.
    return translator.translateStatementOnly(op);
}

} // namespace seer::sl
