#include "seerlang/canonical.h"

#include <map>
#include <string>
#include <vector>

#include "seerlang/encoding.h"
#include "support/hashing.h"

namespace seer::sl {

using eg::TermPtr;

namespace {

/** Bound-name environment: name -> stack of binder numbers. */
using Env = std::map<std::string, std::vector<uint64_t>>;

bool
isForWithBinder(Symbol op, std::string *iv_name)
{
    auto fields = eg::splitSymbol(op);
    if (fields.size() != 3 || fields[0] != "affine.for")
        return false;
    if (iv_name)
        *iv_name = fields[1];
    return true;
}

uint64_t
hashRec(const TermPtr &term, Env &env, uint64_t &binder_count)
{
    Symbol op = term->op();
    uint64_t hash = kHashSeed;

    std::string iv_name;
    if (isForWithBinder(op, &iv_name)) {
        // Binder: op name + binder number stand in for the iv name and
        // the loop id. lb/ub/step are evaluated outside the binding;
        // only the body (child 3) sees the iv.
        uint64_t binder = binder_count++;
        hash = hashString("affine.for#", hash);
        hash = hashValue(binder, hash);
        hash = hashValue(term->arity(), hash);
        size_t body_index = term->arity() - 1;
        for (size_t i = 0; i < term->arity(); ++i) {
            if (i != body_index) {
                hash = hashCombine(
                    hash, hashRec(term->child(i), env, binder_count));
            }
        }
        env[iv_name].push_back(binder);
        hash = hashCombine(
            hash, hashRec(term->child(body_index), env, binder_count));
        env[iv_name].pop_back();
        return hash;
    }

    if (auto var = decodeVar(op)) {
        auto it = env.find(*var);
        if (it != env.end() && !it->second.empty()) {
            hash = hashString("%bvar", hash);
            return hashValue(it->second.back(), hash);
        }
        // Free variable: semantic payload, hash by name.
    }

    hash = hashString(op.str(), hash);
    hash = hashValue(term->arity(), hash);
    for (const TermPtr &child : term->children())
        hash = hashCombine(hash, hashRec(child, env, binder_count));
    return hash;
}

bool
alphaRec(const TermPtr &a, const TermPtr &b, Env &env_a, Env &env_b,
         uint64_t &binder_count)
{
    if (a->arity() != b->arity())
        return false;
    std::string iv_a, iv_b;
    bool for_a = isForWithBinder(a->op(), &iv_a);
    bool for_b = isForWithBinder(b->op(), &iv_b);
    if (for_a != for_b)
        return false;
    if (for_a) {
        if (a->arity() < 1)
            return false;
        size_t body_index = a->arity() - 1;
        for (size_t i = 0; i < a->arity(); ++i) {
            if (i == body_index)
                continue;
            if (!alphaRec(a->child(i), b->child(i), env_a, env_b,
                          binder_count))
                return false;
        }
        uint64_t binder = binder_count++;
        env_a[iv_a].push_back(binder);
        env_b[iv_b].push_back(binder);
        bool ok = alphaRec(a->child(body_index), b->child(body_index),
                           env_a, env_b, binder_count);
        env_a[iv_a].pop_back();
        env_b[iv_b].pop_back();
        return ok;
    }
    auto var_a = decodeVar(a->op());
    auto var_b = decodeVar(b->op());
    if (static_cast<bool>(var_a) != static_cast<bool>(var_b))
        return false;
    if (var_a) {
        auto it_a = env_a.find(*var_a);
        auto it_b = env_b.find(*var_b);
        bool bound_a = it_a != env_a.end() && !it_a->second.empty();
        bool bound_b = it_b != env_b.end() && !it_b->second.empty();
        if (bound_a != bound_b)
            return false;
        if (bound_a)
            return it_a->second.back() == it_b->second.back();
        return *var_a == *var_b; // free: names are payload
    }
    if (a->op() != b->op())
        return false;
    for (size_t i = 0; i < a->arity(); ++i) {
        if (!alphaRec(a->child(i), b->child(i), env_a, env_b,
                      binder_count))
            return false;
    }
    return true;
}

} // namespace

uint64_t
canonicalTermHash(const TermPtr &term)
{
    Env env;
    uint64_t binder_count = 0;
    return hashRec(term, env, binder_count);
}

bool
alphaEquivalent(const TermPtr &a, const TermPtr &b)
{
    Env env_a, env_b;
    uint64_t binder_count = 0;
    return alphaRec(a, b, env_a, env_b, binder_count);
}

} // namespace seer::sl
