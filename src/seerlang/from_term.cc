#include "seerlang/from_term.h"

#include <set>

#include "ir/builder.h"
#include "ir/parser.h"
#include "seerlang/encoding.h"
#include "support/error.h"

namespace seer::sl {

using namespace ir;
using eg::Term;
using eg::TermPtr;

namespace {

void
collectFreeLeaves(const TermPtr &term, std::set<std::string> &bound_vars,
                  std::map<std::string, Type> &args,
                  std::set<std::string> &free_vars)
{
    Symbol op = term->op();
    if (auto arg = decodeArg(op)) {
        auto [name, type] = *arg;
        auto it = args.find(name);
        if (it != args.end() && !(it->second == type))
            fatal("SeerLang: arg '" + name + "' used at two types");
        args.emplace(name, type);
        return;
    }
    if (auto var = decodeVar(op)) {
        if (!bound_vars.count(*var))
            free_vars.insert(*var);
        return;
    }
    bool is_for = isForSymbol(op);
    std::string iv;
    if (is_for) {
        iv = eg::splitSymbol(op)[1];
        // Bounds and step are outside the iv scope.
        for (size_t i = 0; i < 3; ++i) {
            collectFreeLeaves(term->child(i), bound_vars, args,
                              free_vars);
        }
        bool was_bound = !bound_vars.insert(iv).second;
        collectFreeLeaves(term->child(3), bound_vars, args, free_vars);
        if (!was_bound)
            bound_vars.erase(iv);
        return;
    }
    for (const auto &child : term->children())
        collectFreeLeaves(child, bound_vars, args, free_vars);
}

class Emitter
{
  public:
    Module
    run(const TermPtr &term, const EmitSpec &spec)
    {
        Module module;
        auto func = std::make_unique<Operation>(
            Symbol(ir::opnames::kFunc));
        func->setAttr("sym_name", Attribute(spec.func_name));
        Block &body = func->addRegion().block();
        pushScope();
        for (const auto &[name, type] : spec.args)
            scopes_.back()[name] = body.addArg(type, name);

        TermPtr body_term = term;
        if (opNameOf(term->op()) == "func")
            body_term = term->child(0);
        entry_block_ = &body;
        OpBuilder builder = OpBuilder::atEnd(body);
        emitStatement(body_term, builder);
        builder.create(ir::opnames::kReturn, {}, {});
        popScope();
        module.push_back(std::move(func));
        return module;
    }

  private:
    using VnKey = std::pair<Symbol, std::vector<ValueImpl *>>;

    void
    pushScope()
    {
        scopes_.emplace_back();
        vn_.emplace_back();
    }

    void
    popScope()
    {
        scopes_.pop_back();
        vn_.pop_back();
    }

    Value
    lookupName(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        fatal("SeerLang emission: unbound name '" + name + "'");
    }

    std::optional<Value>
    vnLookup(const VnKey &key)
    {
        for (auto it = vn_.rbegin(); it != vn_.rend(); ++it) {
            auto found = it->find(key);
            if (found != it->end())
                return found->second;
        }
        return std::nullopt;
    }

    void
    emitStatement(const TermPtr &term, OpBuilder &builder)
    {
        Symbol op = term->op();
        std::string name = opNameOf(op);
        if (name == "nop")
            return;
        if (name == "seq") {
            emitStatement(term->child(0), builder);
            emitStatement(term->child(1), builder);
            return;
        }
        if (name == "memref.load" || name == "memref.alloc") {
            emitValue(term, builder);
            return;
        }
        if (name == "memref.store") {
            emitStore(term, builder);
            return;
        }
        if (name == "affine.for") {
            emitFor(term, builder);
            return;
        }
        if (name == "scf.if") {
            emitIf(term, builder);
            return;
        }
        if (name == "scf.while") {
            emitWhile(term, builder);
            return;
        }
        fatal("SeerLang emission: '" + name +
              "' is not a statement operator");
    }

    void
    emitStore(const TermPtr &term, OpBuilder &builder)
    {
        std::string tag = fieldsOf(term->op())[0];
        if (!emitted_stores_.insert(tag).second)
            return; // already materialized at an earlier chain position
        Value value = emitValue(term->child(0), builder);
        Value memref = emitValue(term->child(1), builder);
        std::vector<Value> indices;
        for (size_t i = 2; i < term->arity(); ++i)
            indices.push_back(emitValue(term->child(i), builder));
        builder.store(value, memref, indices);
    }

    /**
     * Turn a bound term into an AffineBound: decompose linear structure
     * when present; otherwise emit the whole expression as one value.
     */
    AffineBound
    emitBound(const TermPtr &term, OpBuilder &builder)
    {
        Symbol op = term->op();
        if (auto constant = decodeIntConst(op))
            return AffineBound::fromConstant(constant->first);
        std::string name = opNameOf(op);
        if (name == ir::opnames::kAddI) {
            AffineBound lhs = emitBound(term->child(0), builder);
            AffineBound rhs = emitBound(term->child(1), builder);
            AffineBound out;
            out.constant = lhs.constant + rhs.constant;
            out.terms = lhs.terms;
            out.terms.insert(out.terms.end(), rhs.terms.begin(),
                             rhs.terms.end());
            return out;
        }
        if (name == ir::opnames::kMulI) {
            auto c0 = decodeIntConst(term->child(0)->op());
            auto c1 = decodeIntConst(term->child(1)->op());
            if (c1 && !c0) {
                AffineBound base = emitBound(term->child(0), builder);
                AffineBound out;
                out.constant = base.constant * c1->first;
                for (auto &[v, coeff] : base.terms)
                    out.terms.emplace_back(v, coeff * c1->first);
                return out;
            }
            if (c0 && !c1) {
                AffineBound base = emitBound(term->child(1), builder);
                AffineBound out;
                out.constant = base.constant * c0->first;
                for (auto &[v, coeff] : base.terms)
                    out.terms.emplace_back(v, coeff * c0->first);
                return out;
            }
        }
        // Fallback: a single opaque index value.
        return AffineBound::fromValue(emitValue(term, builder));
    }

    void
    emitFor(const TermPtr &term, OpBuilder &builder)
    {
        auto fields = eg::splitSymbol(term->op());
        const std::string &iv_name = fields[1];
        const std::string &loop_id = fields[2];

        AffineBound lb = emitBound(term->child(0), builder);
        AffineBound ub = emitBound(term->child(1), builder);
        auto step = decodeIntConst(term->child(2)->op());
        if (!step)
            fatal("SeerLang emission: non-constant loop step");

        Operation *loop =
            builder.affineFor(lb, ub, step->first, iv_name);
        loop->setAttr("seer.loop_id", Attribute(loop_id));
        Block &body = loop->region(0).block();
        pushScope();
        scopes_.back()[iv_name] = body.arg(0);
        OpBuilder body_builder = OpBuilder::atEnd(body);
        emitStatement(term->child(3), body_builder);
        body_builder.create(ir::opnames::kAffineYield, {}, {});
        popScope();
    }

    void
    emitIf(const TermPtr &term, OpBuilder &builder)
    {
        Value cond = emitValue(term->child(0), builder);
        Operation *if_op = builder.scfIf(cond);
        for (int branch = 0; branch < 2; ++branch) {
            pushScope();
            OpBuilder branch_builder =
                OpBuilder::atEnd(if_op->region(branch).block());
            emitStatement(term->child(1 + branch), branch_builder);
            branch_builder.create(ir::opnames::kYield, {}, {});
            popScope();
        }
    }

    void
    emitWhile(const TermPtr &term, OpBuilder &builder)
    {
        Operation *while_op = builder.scfWhile();
        pushScope();
        OpBuilder cond_builder =
            OpBuilder::atEnd(while_op->region(0).block());
        emitStatement(term->child(0), cond_builder);
        Value cond = emitValue(term->child(1), cond_builder);
        cond_builder.create(ir::opnames::kCondition, {cond}, {});
        popScope();
        pushScope();
        OpBuilder body_builder =
            OpBuilder::atEnd(while_op->region(1).block());
        emitStatement(term->child(2), body_builder);
        body_builder.create(ir::opnames::kYield, {}, {});
        popScope();
    }

    Value
    emitValue(const TermPtr &term, OpBuilder &builder)
    {
        Symbol op = term->op();
        if (auto constant = decodeIntConst(op)) {
            VnKey key{op, {}};
            if (auto hit = vnLookup(key))
                return *hit;
            Value v =
                builder.intConstant(constant->second, constant->first);
            vn_.back()[key] = v;
            return v;
        }
        if (auto constant = decodeFloatConst(op)) {
            VnKey key{op, {}};
            if (auto hit = vnLookup(key))
                return *hit;
            Value v = builder.floatConstant(*constant);
            vn_.back()[key] = v;
            return v;
        }
        if (auto arg = decodeArg(op))
            return lookupName(arg->first);
        if (auto var = decodeVar(op))
            return lookupName(*var);

        std::string name = opNameOf(op);
        auto fields = fieldsOf(op);

        if (name == "memref.load") {
            const std::string &tag = fields[0];
            auto it = tagged_.find(tag);
            if (it != tagged_.end())
                return it->second;
            Value memref = emitValue(term->child(0), builder);
            std::vector<Value> indices;
            for (size_t i = 1; i < term->arity(); ++i)
                indices.push_back(emitValue(term->child(i), builder));
            Value v = builder.load(memref, indices);
            tagged_[tag] = v;
            return v;
        }
        if (name == "memref.alloc") {
            const std::string &tag = fields[1];
            auto it = tagged_.find(tag);
            if (it != tagged_.end())
                return it->second;
            // Buffers live at function scope: emit at the entry so
            // every region (and every clone a pass makes of the
            // referencing code) sees the same buffer.
            OpBuilder entry_builder =
                entry_block_->empty()
                    ? OpBuilder::atEnd(*entry_block_)
                    : OpBuilder::before(&entry_block_->front());
            Value v = entry_builder.alloc(parseType(fields[0]));
            v.definingOp()->setAttr("seer.tag", Attribute(tag));
            tagged_[tag] = v;
            return v;
        }
        if (isStatementSymbol(op)) {
            fatal("SeerLang emission: statement operator '" + name +
                  "' in value position");
        }

        // Generic value op: children first, then value-number.
        std::vector<Value> operands;
        operands.reserve(term->arity());
        for (const auto &child : term->children())
            operands.push_back(emitValue(child, builder));
        std::vector<ValueImpl *> key_operands;
        for (Value operand : operands)
            key_operands.push_back(operand.impl());
        VnKey key{op, key_operands};
        if (auto hit = vnLookup(key))
            return *hit;

        Value result;
        if (name == ir::opnames::kCmpI || name == ir::opnames::kCmpF) {
            Operation *cmp = builder.create(name, std::move(operands),
                                            {Type::i1()});
            cmp->setAttr("predicate", Attribute(fields[0]));
            result = cmp->result();
        } else if (fields.size() == 2) {
            // Cast: fields are (from, to).
            result = builder
                         .create(name, std::move(operands),
                                 {parseType(fields[1])})
                         ->result();
        } else {
            SEER_ASSERT(fields.size() == 1,
                        "unexpected symbol encoding: " << op.str());
            result = builder
                         .create(name, std::move(operands),
                                 {parseType(fields[0])})
                         ->result();
        }
        vn_.back()[key] = result;
        return result;
    }

    ir::Block *entry_block_ = nullptr;
    std::vector<std::map<std::string, Value>> scopes_;
    std::vector<std::map<VnKey, Value>> vn_;
    std::map<std::string, Value> tagged_;
    std::set<std::string> emitted_stores_;
};

} // namespace

EmitSpec
inferSpec(const TermPtr &term, const std::string &func_name)
{
    std::set<std::string> bound, free_vars;
    std::map<std::string, Type> args;
    collectFreeLeaves(term, bound, args, free_vars);
    EmitSpec spec;
    spec.func_name = func_name;
    for (const auto &[name, type] : args)
        spec.args.emplace_back(name, type);
    for (const std::string &name : free_vars)
        spec.args.emplace_back(name, Type::index());
    return spec;
}

Module
termToFunc(const TermPtr &term, const EmitSpec &spec)
{
    return Emitter().run(term, spec);
}

} // namespace seer::sl
