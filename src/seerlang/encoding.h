/**
 * @file
 * SeerLang symbol encoding.
 *
 * SeerLang is the S-expression language that interfaces the IR with the
 * e-graph (Section 4.2 of the paper). Every operator symbol encodes the
 * operation name plus its static payload, separated by colons:
 *
 *   const:42:i32            integer/index literal
 *   constf:0x1.8p+1:f64     f64 literal (hex-float for exact round-trip)
 *   arg:a:memref<8xi32>     function argument leaf
 *   var:i                   loop induction variable leaf (index typed)
 *   arith.addi:i32          value op (type-annotated)
 *   arith.cmpi:slt:i32      compare (predicate + operand type)
 *   arith.extsi:i8:i32      cast (from + to types)
 *   memref.load:t7          tagged load   (children: mem, indices...)
 *   memref.store:t8         tagged store  (children: value, mem, idx...)
 *   memref.alloc:memref<4xi32>:t9  tagged allocation leaf
 *   affine.for:i:L3         loop (children: lb, ub, step, body)
 *   scf.if                  statement if (children: cond, then, else)
 *   scf.while:t4            while (children: cond-effects, cond, body)
 *   seq                     statement sequencing (children: a, b)
 *   nop                     empty statement
 *   func:name               function root (children: body)
 *
 * Memory operations carry a unique tag so that two textually identical
 * accesses at different program points can never be hash-consed together
 * (the paper instead assumes a dependence between every pair of memory
 * ops; the tag realizes exactly that ordering discipline).
 */
#ifndef SEER_SEERLANG_ENCODING_H_
#define SEER_SEERLANG_ENCODING_H_

#include <optional>

#include "egraph/term.h"
#include "ir/type.h"

namespace seer::sl {

// Symbol comes from support/symbol.h (namespace seer).

// --- Constants ----------------------------------------------------------

Symbol encodeIntConst(int64_t value, ir::Type type);
Symbol encodeFloatConst(double value);

/** Integer literal (value, type); nullopt if not an integer literal. */
std::optional<std::pair<int64_t, ir::Type>> decodeIntConst(Symbol symbol);
std::optional<double> decodeFloatConst(Symbol symbol);

// --- Leaves -------------------------------------------------------------

Symbol encodeArg(const std::string &name, ir::Type type);
std::optional<std::pair<std::string, ir::Type>> decodeArg(Symbol symbol);

Symbol encodeVar(const std::string &name);
std::optional<std::string> decodeVar(Symbol symbol);

// --- Value ops ----------------------------------------------------------

/** Generic value op: "<opname>:<field>:<field>..." */
Symbol encodeOp(const std::string &op_name,
                const std::vector<std::string> &fields);

/** The IR op name prefix of a symbol ("arith.addi" of "arith.addi:i32"). */
std::string opNameOf(Symbol symbol);

/** Fields after the op name. */
std::vector<std::string> fieldsOf(Symbol symbol);

// --- Tagged memory / control symbols -----------------------------------

/** Fresh process-unique tag (t0, t1, ...). */
std::string freshTag();

/** Fresh loop id (L0, L1, ...). */
std::string freshLoopId();

/**
 * Deterministic fresh-name scope (RAII, per thread).
 *
 * While a scope is active on the current thread, freshTag()/
 * freshLoopId() draw from a stream derived from the scope's seed
 * ("t<seed-hex>x<n>" / "L<seed-hex>x<n>") instead of the process-global
 * counters. Seeding the scope with the *content hash* of the term being
 * worked on makes snippet evaluation a pure function of its inputs:
 * re-evaluating the same snippet — on any thread, in any order, in any
 * process — reproduces byte-identical tags and loop ids. That is what
 * lets the pass-outcome cache hand back a recorded replacement as if it
 * had just been computed, and what makes -j 1 and -j N explorations
 * bit-identical.
 *
 * Uniqueness discipline: global names are pure decimals ("t42"), scoped
 * names always contain the 'x' separator, and two scopes only share a
 * stream when their seeds collide — i.e. (for content-hash seeds) when
 * the snippets themselves are identical, in which case identical names
 * are exactly the intent. Scopes nest; the innermost wins.
 */
class NameScope
{
  public:
    explicit NameScope(uint64_t seed);
    ~NameScope();

    NameScope(const NameScope &) = delete;
    NameScope &operator=(const NameScope &) = delete;

  private:
    NameScope *previous_;
    uint64_t seed_;
    uint64_t next_ = 0;
    friend std::string freshTag();
    friend std::string freshLoopId();
};

Symbol encodeLoad(const std::string &tag);
Symbol encodeStore(const std::string &tag);
Symbol encodeAlloc(ir::Type type, const std::string &tag);
Symbol encodeFor(const std::string &iv_name, const std::string &loop_id);
Symbol encodeWhile(const std::string &tag);

/** True if the symbol denotes an affine.for term. */
bool isForSymbol(Symbol symbol);

/** Loop id field of an affine.for symbol. */
std::string loopIdOf(Symbol symbol);

/** Structural symbols. */
Symbol seqSymbol();
Symbol nopSymbol();
Symbol ifSymbol();
Symbol funcSymbol(const std::string &name);

/** True for symbols whose terms are statements (effects), not values. */
bool isStatementSymbol(Symbol symbol);

} // namespace seer::sl

#endif // SEER_SEERLANG_ENCODING_H_
