/**
 * @file
 * SeerLang -> IR translation (the SEER back end).
 *
 * Emits a single func.func from a func:<name> term, or a synthetic
 * "snippet" function from any statement term (used by the dynamic
 * rewrites to hand a matched sub-program to an external pass). Free
 * `arg:` and `var:` leaves become function arguments.
 */
#ifndef SEER_SEERLANG_FROM_TERM_H_
#define SEER_SEERLANG_FROM_TERM_H_

#include "egraph/term.h"
#include "ir/op.h"

namespace seer::sl {

/** Function signature for emission. */
struct EmitSpec
{
    std::string func_name;
    std::vector<std::pair<std::string, ir::Type>> args;
};

/**
 * Infer a snippet signature from the free leaves of `term`: every
 * distinct arg:<name>:<type> plus every var:<name> not bound by an
 * enclosing affine.for (free vars become index arguments). Sorted by
 * name for determinism.
 */
EmitSpec inferSpec(const eg::TermPtr &term, const std::string &func_name);

/**
 * Emit `term` as a module holding one function. `term` is either a
 * func:<name> root (body = child 0) or a bare statement term. Throws
 * FatalError on malformed terms.
 */
ir::Module termToFunc(const eg::TermPtr &term, const EmitSpec &spec);

} // namespace seer::sl

#endif // SEER_SEERLANG_FROM_TERM_H_
