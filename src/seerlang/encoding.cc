#include "seerlang/encoding.h"

#include <atomic>
#include <cstdio>

#include "ir/parser.h"
#include "support/error.h"

namespace seer::sl {

using eg::joinSymbol;
using eg::splitSymbol;

namespace {

std::atomic<uint64_t> tag_counter{0};
std::atomic<uint64_t> loop_counter{0};

/** Innermost active NameScope of this thread (nullptr: global stream). */
thread_local NameScope *active_scope = nullptr;

/** "<seed-hex>x<n>": scoped names embed their stream so independent
 *  scopes can never collide with each other or with the decimal global
 *  stream. */
std::string
scopedName(uint64_t seed, uint64_t n)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%016llxx%llu",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(n));
    return buffer;
}

} // namespace

NameScope::NameScope(uint64_t seed)
    : previous_(active_scope), seed_(seed)
{
    active_scope = this;
}

NameScope::~NameScope()
{
    active_scope = previous_;
}

Symbol
encodeIntConst(int64_t value, ir::Type type)
{
    return joinSymbol({"const", std::to_string(value), type.str()});
}

Symbol
encodeFloatConst(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    return joinSymbol({"constf", buffer, "f64"});
}

std::optional<std::pair<int64_t, ir::Type>>
decodeIntConst(Symbol symbol)
{
    auto fields = splitSymbol(symbol);
    if (fields.size() != 3 || fields[0] != "const")
        return std::nullopt;
    return std::make_pair(std::stoll(fields[1]),
                          ir::parseType(fields[2]));
}

std::optional<double>
decodeFloatConst(Symbol symbol)
{
    auto fields = splitSymbol(symbol);
    if (fields.size() != 3 || fields[0] != "constf")
        return std::nullopt;
    return std::strtod(fields[1].c_str(), nullptr);
}

Symbol
encodeArg(const std::string &name, ir::Type type)
{
    return joinSymbol({"arg", name, type.str()});
}

std::optional<std::pair<std::string, ir::Type>>
decodeArg(Symbol symbol)
{
    auto fields = splitSymbol(symbol);
    if (fields.size() != 3 || fields[0] != "arg")
        return std::nullopt;
    return std::make_pair(fields[1], ir::parseType(fields[2]));
}

Symbol
encodeVar(const std::string &name)
{
    return joinSymbol({"var", name});
}

std::optional<std::string>
decodeVar(Symbol symbol)
{
    auto fields = splitSymbol(symbol);
    if (fields.size() != 2 || fields[0] != "var")
        return std::nullopt;
    return fields[1];
}

Symbol
encodeOp(const std::string &op_name,
         const std::vector<std::string> &fields)
{
    std::vector<std::string> all{op_name};
    all.insert(all.end(), fields.begin(), fields.end());
    return joinSymbol(all);
}

std::string
opNameOf(Symbol symbol)
{
    return splitSymbol(symbol)[0];
}

std::vector<std::string>
fieldsOf(Symbol symbol)
{
    auto fields = splitSymbol(symbol);
    fields.erase(fields.begin());
    return fields;
}

std::string
freshTag()
{
    if (active_scope)
        return "t" + scopedName(active_scope->seed_,
                                active_scope->next_++);
    return "t" + std::to_string(tag_counter++);
}

std::string
freshLoopId()
{
    if (active_scope)
        return "L" + scopedName(active_scope->seed_,
                                active_scope->next_++);
    return "L" + std::to_string(loop_counter++);
}

Symbol
encodeLoad(const std::string &tag)
{
    return joinSymbol({"memref.load", tag});
}

Symbol
encodeStore(const std::string &tag)
{
    return joinSymbol({"memref.store", tag});
}

Symbol
encodeAlloc(ir::Type type, const std::string &tag)
{
    return joinSymbol({"memref.alloc", type.str(), tag});
}

Symbol
encodeFor(const std::string &iv_name, const std::string &loop_id)
{
    return joinSymbol({"affine.for", iv_name, loop_id});
}

Symbol
encodeWhile(const std::string &tag)
{
    return joinSymbol({"scf.while", tag});
}

bool
isForSymbol(Symbol symbol)
{
    return opNameOf(symbol) == "affine.for";
}

std::string
loopIdOf(Symbol symbol)
{
    auto fields = splitSymbol(symbol);
    SEER_ASSERT(fields.size() == 3 && fields[0] == "affine.for",
                "loopIdOf on non-loop symbol " << symbol.str());
    return fields[2];
}

Symbol
seqSymbol()
{
    return Symbol("seq");
}

Symbol
nopSymbol()
{
    return Symbol("nop");
}

Symbol
ifSymbol()
{
    return Symbol("scf.if");
}

Symbol
funcSymbol(const std::string &name)
{
    return joinSymbol({"func", name});
}

bool
isStatementSymbol(Symbol symbol)
{
    std::string op = opNameOf(symbol);
    return op == "seq" || op == "nop" || op == "scf.if" ||
           op == "scf.while" || op == "affine.for" ||
           op == "memref.store" || op == "memref.load" ||
           op == "memref.alloc" || op == "func";
}

} // namespace seer::sl
