/**
 * @file
 * Alpha-canonical structural hashing of SeerLang terms.
 *
 * The external-pass evaluation layer keys its caches on term *content*.
 * Two snippets that differ only in bound names — loop induction
 * variables and loop ids, both of which back-translation replaces with
 * fresh names anyway — are the same input to a pass, so they must hash
 * equal (a cache hit). Everything else (op names, types, constants,
 * predicates, memory tags, free variables, argument names) is semantic
 * payload and hashes verbatim (a miss).
 *
 * Memory tags are deliberately NOT canonicalized: tags realize the
 * program-order discipline (encoding.h), and two tag-distinct but
 * otherwise identical sub-programs are different program points whose
 * classes must never be merged through a shared cached replacement.
 *
 * Hashes are computed from symbol *text*, never interned ids, so they
 * are stable across processes — the requirement for the on-disk cache.
 */
#ifndef SEER_SEERLANG_CANONICAL_H_
#define SEER_SEERLANG_CANONICAL_H_

#include <cstdint>

#include "egraph/term.h"

namespace seer::sl {

/**
 * Alpha-canonical 64-bit structural hash: affine.for binders are
 * numbered in pre-order, their loop ids and induction-variable names
 * hash as that number, and bound var:<name> references hash as the
 * binder number they resolve to (innermost shadowing outermost). Free
 * variables and every other symbol hash by full text.
 */
uint64_t canonicalTermHash(const eg::TermPtr &term);

/** True when the two terms are alpha-equivalent in the above sense.
 *  (Exact, not hash-based: used by tests and collision diagnostics.) */
bool alphaEquivalent(const eg::TermPtr &a, const eg::TermPtr &b);

} // namespace seer::sl

#endif // SEER_SEERLANG_CANONICAL_H_
