#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace seer {

void
parallelFor(size_t count, unsigned threads,
            const std::function<void(size_t)> &fn,
            const std::function<bool()> &cancel)
{
    if (count == 0)
        return;
    unsigned workers = std::max(1u, threads);
    workers = static_cast<unsigned>(
        std::min<size_t>(workers, count));
    if (workers <= 1) {
        for (size_t i = 0; i < count; ++i) {
            if (cancel && cancel())
                return;
            fn(i);
        }
        return;
    }
    std::atomic<size_t> cursor{0};
    std::atomic<bool> stop{false};
    auto body = [&] {
        while (!stop.load(std::memory_order_relaxed)) {
            size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            if (cancel && cancel()) {
                stop.store(true, std::memory_order_relaxed);
                return;
            }
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned t = 1; t < workers; ++t)
        pool.emplace_back(body);
    body(); // the calling thread is worker 0
    for (std::thread &worker : pool)
        worker.join();
}

unsigned
hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

} // namespace seer
