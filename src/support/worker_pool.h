/**
 * @file
 * The shared deterministic worker-pool abstraction.
 *
 * Two consumers drive it: the external-pass evaluation batches
 * (core/external_rules) and the runner's sharded e-matching phase
 * (egraph/runner). Both follow the same determinism discipline —
 * every job is a pure function of its index writing into a disjoint
 * result slot, and the caller folds the slots in index order — so the
 * observable outcome is bit-identical for any worker count.
 *
 * Two entry points:
 *
 *  - WorkerPool: a persistent pool. Threads are spawned once and parked
 *    between batches, so a phase that dispatches a batch per runner
 *    iteration (e-matching does) pays thread start-up once per run, not
 *    once per iteration.
 *  - parallelFor(): the one-shot fork-join helper (spawns and joins
 *    per call). Still the right tool for single large batches like the
 *    corpus runner's seed sweep.
 *
 * Jobs must not throw: an exception escaping a worker thread would
 * std::terminate the process. Callers catch inside the job and report
 * through their result slots.
 */
#ifndef SEER_SUPPORT_WORKER_POOL_H_
#define SEER_SUPPORT_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seer {

/**
 * A persistent fork-join pool. run() executes fn(0..count-1) across
 * `threads` workers (the calling thread participates as worker 0) and
 * returns only after every worker finished the batch, so the job
 * closure may safely reference stack state of the caller. Completion
 * *order* is unspecified; job *start* is work-stealing over an atomic
 * cursor. With threads <= 1 the jobs run inline on the calling thread
 * — `-j 1` exercises the same code path minus the threads.
 *
 * run() must only be called from one thread at a time (the pool is a
 * fork-join primitive, not a task queue).
 */
class WorkerPool
{
  public:
    /** Spawns threads-1 parked workers (the caller is the last one). */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned threads() const { return threads_; }

    /**
     * Run fn(0..count-1) over the pool and join. When `cancel` is
     * provided and returns true, remaining *unstarted* jobs are skipped
     * (in-flight jobs always finish: cancellation is cooperative).
     */
    void run(size_t count, const std::function<void(size_t)> &fn,
             const std::function<bool()> &cancel = nullptr);

  private:
    void workerLoop();
    void drain();

    const unsigned threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    /** Batch handshake: bumping the generation publishes a batch; every
     *  worker runs it exactly once and reports done. Batch members are
     *  only written while all workers are parked. */
    uint64_t generation_ = 0;
    size_t workers_done_ = 0;
    bool shutdown_ = false;

    size_t count_ = 0;
    const std::function<void(size_t)> *fn_ = nullptr;
    const std::function<bool()> *cancel_ = nullptr;
    std::atomic<size_t> cursor_{0};
    std::atomic<bool> stop_{false};
};

/**
 * A plain task queue for independent, individually-submitted jobs —
 * the primitive WorkerPool deliberately is not. The daemon dispatches
 * one task per client connection: tasks arrive one at a time from the
 * accept loop, run concurrently up to `threads`, and the queue drains
 * cleanly on shutdown (in-flight tasks finish; queued-but-unstarted
 * tasks still run — a connected client must get *some* response).
 *
 * Tasks must not throw (same contract as WorkerPool jobs). No
 * determinism guarantees: ordering across tasks is whatever the
 * scheduler does. Anything needing bit-reproducibility belongs on
 * WorkerPool/parallelFor, not here.
 */
class TaskQueue
{
  public:
    explicit TaskQueue(unsigned threads);
    /** Drains the queue (waits for every posted task), then joins. */
    ~TaskQueue();

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /** Enqueue a task; false (task dropped) after shutdown began. */
    bool post(std::function<void()> task);

    /** Block until every posted task has finished. */
    void drain();

    /** Stop accepting tasks, drain, and join the workers. Idempotent. */
    void shutdown();

    /** Tasks posted but not yet finished. */
    size_t pending() const;

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t active_ = 0;
    bool shutdown_ = false;
};

/**
 * One-shot fork-join: run fn(0..count-1), spread over up to `threads`
 * workers spawned for this call. Same cancellation and no-throw
 * contract as WorkerPool::run.
 */
void parallelFor(size_t count, unsigned threads,
                 const std::function<void(size_t)> &fn,
                 const std::function<bool()> &cancel = nullptr);

/** Worker count for "use every core" requests (never 0). */
unsigned hardwareThreads();

} // namespace seer

#endif // SEER_SUPPORT_WORKER_POOL_H_
