#include "support/symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace seer {
namespace {

/** Process-global intern table, guarded for thread safety. */
struct InternTable
{
    std::mutex mutex;
    std::deque<std::string> strings;
    std::unordered_map<std::string_view, uint32_t> ids;

    InternTable() { intern(""); }

    uint32_t
    intern(std::string_view text)
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = ids.find(text);
        if (it != ids.end())
            return it->second;
        strings.emplace_back(text);
        uint32_t id = static_cast<uint32_t>(strings.size() - 1);
        ids.emplace(strings.back(), id);
        return id;
    }

    const std::string &
    str(uint32_t id)
    {
        std::lock_guard<std::mutex> lock(mutex);
        return strings[id];
    }
};

InternTable &
table()
{
    static InternTable instance;
    return instance;
}

} // namespace

Symbol::Symbol() : id_(0) {}

Symbol::Symbol(std::string_view text) : id_(table().intern(text)) {}

const std::string &
Symbol::str() const
{
    return table().str(id_);
}

} // namespace seer
