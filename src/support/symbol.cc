#include "support/symbol.h"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace seer {
namespace {

/**
 * Process-global intern table.
 *
 * The table is tuned for the parallel external-pass workers, which
 * intern and stringify symbols on every term they touch — a plainly
 * mutex-guarded table serializes the whole pool:
 *
 *  - str() is lock-free: strings live in fixed-size blocks that never
 *    move once allocated, and a thread holding a valid Symbol id
 *    received it through some synchronizing handoff (a task launch, a
 *    cache mutex), which also publishes the block its string lives in.
 *  - intern() of an existing string takes only a shared (reader) lock;
 *    the exclusive lock is reserved for first-time insertions.
 *  - on top of that, each thread memoizes its intern results, so the
 *    hot emission loops (the same operator texts over and over) skip
 *    the shared table entirely after first contact.
 */
struct InternTable
{
    static constexpr uint32_t kBlockBits = 16;
    static constexpr uint32_t kBlockSize = uint32_t{1} << kBlockBits;
    static constexpr uint32_t kMaxBlocks = uint32_t{1}
                                           << (32 - kBlockBits);

    std::shared_mutex mutex;
    std::unordered_map<std::string_view, uint32_t> ids; // guarded
    uint32_t count = 0;                                 // guarded
    std::atomic<std::string *> blocks[kMaxBlocks] = {};

    InternTable() { intern(""); }

    uint32_t
    intern(std::string_view text)
    {
        {
            std::shared_lock<std::shared_mutex> lock(mutex);
            auto it = ids.find(text);
            if (it != ids.end())
                return it->second;
        }
        std::unique_lock<std::shared_mutex> lock(mutex);
        auto it = ids.find(text); // racing inserter may have won
        if (it != ids.end())
            return it->second;
        uint32_t id = count++;
        uint32_t block = id >> kBlockBits;
        std::string *storage =
            blocks[block].load(std::memory_order_relaxed);
        if (!storage) {
            storage = new std::string[kBlockSize];
            blocks[block].store(storage, std::memory_order_release);
        }
        std::string &slot = storage[id & (kBlockSize - 1)];
        slot = std::string(text);
        ids.emplace(slot, id);
        return id;
    }

    const std::string &
    str(uint32_t id)
    {
        std::string *storage =
            blocks[id >> kBlockBits].load(std::memory_order_acquire);
        return storage[id & (kBlockSize - 1)];
    }
};

InternTable &
table()
{
    static InternTable instance;
    return instance;
}

uint32_t
internCached(std::string_view text)
{
    // Keys are views into the table's block storage: stable for the
    // process lifetime, so the memo never dangles.
    thread_local std::unordered_map<std::string_view, uint32_t> memo;
    auto it = memo.find(text);
    if (it != memo.end())
        return it->second;
    uint32_t id = table().intern(text);
    memo.emplace(table().str(id), id);
    return id;
}

} // namespace

Symbol::Symbol() : id_(0) {}

Symbol::Symbol(std::string_view text) : id_(internCached(text)) {}

const std::string &
Symbol::str() const
{
    return table().str(id_);
}

} // namespace seer
