#include "support/fault_inject.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace seer {

namespace {

const char *const kPointNames[kNumFaultPoints] = {
    "egraph-alloc",   "extract-alloc",     "interp-alloc",
    "cache-alloc",    "pass-eval-crash",   "pass-eval-timeout",
    "pass-eval-garbage", "cache-read",     "cache-save",
    "rollback-mid-phase",
};

/** splitmix64: the decision function behind rate-mode firing. */
uint64_t
mix(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

const char *
faultPointName(FaultPoint point)
{
    auto index = static_cast<size_t>(point);
    return index < kNumFaultPoints ? kPointNames[index] : "unknown";
}

std::optional<FaultPoint>
parseFaultPoint(const std::string &name)
{
    for (size_t i = 0; i < kNumFaultPoints; ++i)
        if (name == kPointNames[i])
            return static_cast<FaultPoint>(i);
    return std::nullopt;
}

std::string
FaultPlan::str() const
{
    std::ostringstream out;
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        if (!first)
            out << ";";
        first = false;
        return out;
    };
    if (seed != 0)
        sep() << "seed=" << seed;
    if (rate > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", rate);
        sep() << "rate=" << buf;
    }
    if (!fixed.empty()) {
        sep() << "fixed=";
        for (size_t i = 0; i < fixed.size(); ++i) {
            if (i)
                out << ",";
            out << faultPointName(fixed[i].first) << "@"
                << fixed[i].second;
        }
    }
    return out.str();
}

std::optional<FaultPlan>
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    std::istringstream in(text);
    for (std::string token; std::getline(in, token, ';');) {
        if (token.empty())
            continue;
        size_t eq = token.find('=');
        if (eq == std::string::npos)
            return std::nullopt;
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "seed") {
            char *end = nullptr;
            plan.seed = std::strtoull(value.c_str(), &end, 10);
            if (!end || *end != '\0')
                return std::nullopt;
        } else if (key == "rate") {
            char *end = nullptr;
            plan.rate = std::strtod(value.c_str(), &end);
            if (!end || *end != '\0' || plan.rate < 0.0 ||
                plan.rate > 1.0)
                return std::nullopt;
        } else if (key == "fixed") {
            std::istringstream entries(value);
            for (std::string entry; std::getline(entries, entry, ',');) {
                size_t at = entry.find('@');
                if (at == std::string::npos)
                    return std::nullopt;
                auto point = parseFaultPoint(entry.substr(0, at));
                if (!point)
                    return std::nullopt;
                char *end = nullptr;
                uint64_t nth = std::strtoull(
                    entry.c_str() + at + 1, &end, 10);
                if (!end || *end != '\0' || nth == 0)
                    return std::nullopt;
                plan.fixed.emplace_back(*point, nth);
            }
        } else {
            return std::nullopt;
        }
    }
    return plan;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = plan;
    for (uint64_t &h : hits_)
        h = 0;
    armed_.store(plan.enabled(), std::memory_order_relaxed);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = FaultPlan{};
    armed_.store(false, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFire(FaultPoint point)
{
    if (!armed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!plan_.enabled())
        return false;
    auto index = static_cast<size_t>(point);
    uint64_t hit = ++hits_[index];
    for (const auto &[fixed_point, nth] : plan_.fixed)
        if (fixed_point == point && nth == hit)
            return true;
    if (plan_.rate > 0.0) {
        uint64_t h = mix(plan_.seed ^ mix(index * 1315423911ull) ^ hit);
        double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        if (u < plan_.rate)
            return true;
    }
    return false;
}

uint64_t
FaultInjector::hits(FaultPoint point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_[static_cast<size_t>(point)];
}

FaultPlan
FaultInjector::plan() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plan_;
}

} // namespace seer
