/**
 * @file
 * Minimal unix-domain socket + framing helpers for the seer-optd
 * daemon and its clients.
 *
 * The wire protocol is deliberately dumb: one request frame, one
 * response frame, connection closed. A frame is a decimal byte count
 * terminated by '\n', followed by exactly that many payload bytes
 * (the "length-prefixed line protocol"). Framing is transport-level
 * only — payload structure lives in core/session.h — so these helpers
 * stay free of any seer dependency and are trivially unit-testable
 * over a socketpair.
 *
 * All calls retry EINTR, writes use MSG_NOSIGNAL (a vanished client
 * must surface as an error return, never SIGPIPE), and oversized
 * frames are rejected before any allocation so a malformed or
 * malicious peer cannot balloon the daemon.
 */
#ifndef SEER_SUPPORT_SOCKET_H_
#define SEER_SUPPORT_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace seer::net {

/** Refuse frames beyond this many payload bytes (either direction). */
constexpr uint64_t kMaxFrameBytes = 256ull * 1024 * 1024;

/**
 * Move-only RAII file descriptor. Closes on destruction; release()
 * transfers ownership out.
 */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }
    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    bool valid() const { return fd_ >= 0; }
    int get() const { return fd_; }
    int release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on a unix socket at `path` (an existing socket file is
 * unlinked first — the daemon owns its path). Invalid Fd with *error
 * set on failure.
 */
Fd listenUnix(const std::string &path, std::string *error);

/** Connect to a unix socket. Invalid Fd with *error set on failure. */
Fd connectUnix(const std::string &path, std::string *error);

/**
 * Accept one client (blocking). Invalid Fd on error; *error stays
 * empty when the failure is a plain would-block/shutdown race.
 */
Fd acceptClient(int listen_fd, std::string *error);

/** Outcome of one frame-level I/O operation. */
enum class IoStatus
{
    Ok = 0,
    Eof,      ///< orderly close before/inside a frame
    TooLarge, ///< frame length beyond max_bytes
    Error,    ///< errno-level failure (message in *error)
};

/** Write one `<decimal length>\n<payload>` frame. */
IoStatus sendFrame(int fd, std::string_view payload, std::string *error);

/**
 * Read one frame into `payload` (replaced). Eof before the first
 * header byte is a clean end-of-stream; mid-frame EOF is an Error.
 */
IoStatus recvFrame(int fd, std::string &payload, std::string *error,
                   uint64_t max_bytes = kMaxFrameBytes);

/**
 * Poll `fd` for readability for up to `timeout_ms` (0 = immediate).
 * True when readable (or hung up — a read will then observe EOF).
 */
bool waitReadable(int fd, int timeout_ms);

/**
 * True when the peer has hung up (POLLRDHUP/POLLHUP/POLLERR) without
 * consuming any pending data — the daemon's client-disconnect probe,
 * polled while a request is being computed.
 */
bool peerHungUp(int fd);

} // namespace seer::net

#endif // SEER_SUPPORT_SOCKET_H_
