/**
 * @file
 * Error reporting utilities for the SEER toolflow.
 *
 * Follows the gem5 convention: fatal() is for user-caused conditions
 * (malformed IR text, impossible configurations) and raises a recoverable
 * exception so drivers and tests can catch it; panic() is for internal
 * invariant violations (a SEER bug) and aborts.
 */
#ifndef SEER_SUPPORT_ERROR_H_
#define SEER_SUPPORT_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace seer {

/** Exception type thrown by fatal() for user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raise a FatalError with the given message. Never returns. */
[[noreturn]] void fatal(const std::string &msg);

/** Abort with an internal-bug message. Never returns. */
[[noreturn]] void panic(const std::string &msg);

/** Stream-style message builder: fatal(MsgBuilder() << "x=" << x). */
class MsgBuilder
{
  public:
    template <typename T>
    MsgBuilder &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

    std::string str() const { return stream_.str(); }
    operator std::string() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

/** Assert an internal invariant; panics with location info on failure. */
#define SEER_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::seer::panic(::seer::MsgBuilder()                              \
                          << __FILE__ << ":" << __LINE__                    \
                          << ": assertion failed: " #cond ": " << msg);     \
        }                                                                   \
    } while (false)

} // namespace seer

#endif // SEER_SUPPORT_ERROR_H_
