#include "support/worker_pool.h"

#include <algorithm>

namespace seer {

WorkerPool::WorkerPool(unsigned threads)
    : threads_(std::max(1u, threads))
{
    // workers_done_ == worker count is the parked state run() waits
    // for; seed it so the first batch does not wait forever.
    workers_done_ = threads_ - 1;
    workers_.reserve(threads_ - 1);
    for (unsigned t = 1; t < threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
WorkerPool::drain()
{
    // Work stealing over the shared cursor: each claimed index is run
    // exactly once, on whichever worker claimed it first.
    while (!stop_.load(std::memory_order_relaxed)) {
        size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count_)
            return;
        if (cancel_ && (*cancel_)()) {
            stop_.store(true, std::memory_order_relaxed);
            return;
        }
        (*fn_)(i);
    }
}

void
WorkerPool::workerLoop()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        work_cv_.wait(lock,
                      [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_)
            return;
        seen = generation_;
        lock.unlock();
        drain();
        lock.lock();
        if (++workers_done_ == workers_.size() + 1)
            done_cv_.notify_one();
    }
}

void
WorkerPool::run(size_t count, const std::function<void(size_t)> &fn,
                const std::function<bool()> &cancel)
{
    if (count == 0)
        return;
    if (threads_ <= 1 || count == 1) {
        for (size_t i = 0; i < count; ++i) {
            if (cancel && cancel())
                return;
            fn(i);
        }
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Wait for stragglers of the previous batch: batch members must
        // never be rewritten while a worker could still read them.
        done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
        count_ = count;
        fn_ = &fn;
        cancel_ = cancel ? &cancel : nullptr;
        cursor_.store(0, std::memory_order_relaxed);
        stop_.store(false, std::memory_order_relaxed);
        workers_done_ = 0;
        ++generation_;
    }
    work_cv_.notify_all();
    drain(); // the calling thread is worker 0
    std::unique_lock<std::mutex> lock(mutex_);
    workers_done_ += 1; // count the caller
    done_cv_.wait(lock,
                  [&] { return workers_done_ == workers_.size() + 1; });
    workers_done_ = workers_.size(); // parked state for the next batch
}

TaskQueue::TaskQueue(unsigned threads)
{
    unsigned workers = std::max(1u, threads);
    workers_.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskQueue::~TaskQueue()
{
    shutdown();
}

bool
TaskQueue::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_)
            return false;
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
    return true;
}

void
TaskQueue::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [&] { return queue_.empty() && active_ == 0; });
}

void
TaskQueue::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_ && workers_.empty())
            return;
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
}

size_t
TaskQueue::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size() + active_;
}

void
TaskQueue::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        work_cv_.wait(lock,
                      [&] { return shutdown_ || !queue_.empty(); });
        // Shutdown still drains the queue: a posted task represents an
        // accepted client that must get a response.
        if (queue_.empty()) {
            if (shutdown_)
                return;
            continue;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        task();
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idle_cv_.notify_all();
    }
}

void
parallelFor(size_t count, unsigned threads,
            const std::function<void(size_t)> &fn,
            const std::function<bool()> &cancel)
{
    if (count == 0)
        return;
    unsigned workers =
        static_cast<unsigned>(std::min<size_t>(std::max(1u, threads), count));
    if (workers <= 1) {
        for (size_t i = 0; i < count; ++i) {
            if (cancel && cancel())
                return;
            fn(i);
        }
        return;
    }
    std::atomic<size_t> cursor{0};
    std::atomic<bool> stop{false};
    auto body = [&] {
        while (!stop.load(std::memory_order_relaxed)) {
            size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            if (cancel && cancel()) {
                stop.store(true, std::memory_order_relaxed);
                return;
            }
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned t = 1; t < workers; ++t)
        pool.emplace_back(body);
    body(); // the calling thread is worker 0
    for (std::thread &worker : pool)
        worker.join();
}

unsigned
hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

} // namespace seer
