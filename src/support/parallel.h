/**
 * @file
 * A deterministic fork-join worker pool.
 *
 * parallelFor() runs `count` independent jobs on up to `threads`
 * workers and joins them all before returning. Completion *order* is
 * unspecified, so callers that need determinism must make each job a
 * pure function of its index writing to a disjoint slot — exactly the
 * discipline the runner's parallel match phase and the external-pass
 * evaluation batches follow. With threads <= 1 (or a single job) the
 * jobs run inline on the calling thread, so `-j 1` exercises the same
 * code path minus the threads.
 *
 * Jobs must not throw: an exception escaping a worker thread would
 * std::terminate the process. Callers catch inside the job and report
 * through their result slots.
 */
#ifndef SEER_SUPPORT_PARALLEL_H_
#define SEER_SUPPORT_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace seer {

/**
 * Run fn(0..count-1), spread over up to `threads` workers. When
 * `cancel` is provided and returns true, remaining *unstarted* jobs are
 * skipped (in-flight jobs always finish: cancellation is cooperative).
 */
void parallelFor(size_t count, unsigned threads,
                 const std::function<void(size_t)> &fn,
                 const std::function<bool()> &cancel = nullptr);

/** Worker count for "use every core" requests (never 0). */
unsigned hardwareThreads();

} // namespace seer

#endif // SEER_SUPPORT_PARALLEL_H_
