#include "support/exec_context.h"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

#include "support/error.h"

namespace seer {

namespace {

std::atomic<int> g_signal_flag{0};

extern "C" void
signalCancelHandler(int signo)
{
    // Second signal: the cooperative wind-down is taking too long (or
    // is wedged); honor the user's insistence immediately.
    if (g_signal_flag.exchange(1, std::memory_order_relaxed))
        _exit(128 + signo);
}

} // namespace

const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
    case CancelReason::None: return "none";
    case CancelReason::Deadline: return "deadline";
    case CancelReason::MemBudget: return "mem_budget";
    case CancelReason::External: return "external";
    }
    return "unknown";
}

const char *
memSubsystemName(MemSubsystem sub)
{
    switch (sub) {
    case MemSubsystem::EGraph: return "egraph";
    case MemSubsystem::Caches: return "caches";
    case MemSubsystem::Interp: return "interp";
    case MemSubsystem::Extraction: return "extraction";
    }
    return "unknown";
}

json::Value
toJson(const ResourceStats &stats)
{
    json::Value out{json::Object{}};
    out.set("budget_bytes", stats.budget_bytes);
    out.set("current_bytes", stats.current_bytes);
    out.set("peak_bytes", stats.peak_bytes);
    out.set("breached", stats.breached);
    for (size_t i = 0; i < kNumMemSubsystems; ++i) {
        json::Value sub{json::Object{}};
        sub.set("current_bytes", stats.sub[i].current_bytes);
        sub.set("peak_bytes", stats.sub[i].peak_bytes);
        out.set(memSubsystemName(static_cast<MemSubsystem>(i)),
                std::move(sub));
    }
    return out;
}

namespace {

/** current += delta, clamped at 0; returns the new value. */
uint64_t
adjust(std::atomic<uint64_t> &current, int64_t delta)
{
    uint64_t old = current.load(std::memory_order_relaxed);
    uint64_t next;
    do {
        if (delta >= 0)
            next = old + static_cast<uint64_t>(delta);
        else {
            uint64_t credit = static_cast<uint64_t>(-delta);
            next = credit > old ? 0 : old - credit;
        }
    } while (!current.compare_exchange_weak(old, next,
                                            std::memory_order_relaxed));
    return next;
}

void
raisePeak(std::atomic<uint64_t> &peak, uint64_t value)
{
    uint64_t old = peak.load(std::memory_order_relaxed);
    while (old < value &&
           !peak.compare_exchange_weak(old, value,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

bool
ResourceGovernor::charge(MemSubsystem sub, int64_t delta)
{
    auto index = static_cast<size_t>(sub);
    SEER_ASSERT(index < kNumMemSubsystems, "bad memory subsystem");
    uint64_t now = adjust(sub_[index].current, delta);
    raisePeak(sub_[index].peak, now);
    uint64_t total = adjust(total_, delta);
    raisePeak(total_peak_, total);
    if (budget_bytes_ != 0 && total > budget_bytes_)
        breached_.store(true, std::memory_order_relaxed);
    return !breached_.load(std::memory_order_relaxed);
}

ResourceStats
ResourceGovernor::stats() const
{
    ResourceStats out;
    out.budget_bytes = budget_bytes_;
    out.current_bytes = total_.load(std::memory_order_relaxed);
    out.peak_bytes = total_peak_.load(std::memory_order_relaxed);
    out.breached = breached_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kNumMemSubsystems; ++i) {
        out.sub[i].current_bytes =
            sub_[i].current.load(std::memory_order_relaxed);
        out.sub[i].peak_bytes =
            sub_[i].peak.load(std::memory_order_relaxed);
    }
    return out;
}

ExecContext
ExecContext::make()
{
    ExecContext out;
    out.state_ = std::make_shared<State>();
    return out;
}

void
ExecContext::setDeadline(std::chrono::steady_clock::time_point when)
{
    SEER_ASSERT(state_, "setDeadline on an inert ExecContext");
    state_->deadline = when;
}

void
ExecContext::setDeadlineIn(double seconds)
{
    setDeadline(std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds)));
}

std::optional<std::chrono::steady_clock::time_point>
ExecContext::deadline() const
{
    return state_ ? state_->deadline : std::nullopt;
}

void
ExecContext::setGovernor(std::shared_ptr<ResourceGovernor> governor)
{
    SEER_ASSERT(state_, "setGovernor on an inert ExecContext");
    state_->governor = std::move(governor);
}

const std::shared_ptr<ResourceGovernor> &
ExecContext::governor() const
{
    static const std::shared_ptr<ResourceGovernor> kNone;
    return state_ ? state_->governor : kNone;
}

void
ExecContext::requestCancel(CancelReason reason) const
{
    if (!state_ || reason == CancelReason::None)
        return;
    uint8_t expected = 0;
    state_->reason.compare_exchange_strong(
        expected, static_cast<uint8_t>(reason),
        std::memory_order_relaxed);
}

bool
ExecContext::canceled() const
{
    if (!state_)
        return g_signal_flag.load(std::memory_order_relaxed) != 0;
    if (state_->reason.load(std::memory_order_relaxed) != 0)
        return true;
    if (g_signal_flag.load(std::memory_order_relaxed) != 0) {
        requestCancel(CancelReason::External);
        return true;
    }
    if (state_->governor && state_->governor->breached()) {
        requestCancel(CancelReason::MemBudget);
        return true;
    }
    if (state_->deadline &&
        std::chrono::steady_clock::now() >= *state_->deadline) {
        requestCancel(CancelReason::Deadline);
        return true;
    }
    return false;
}

CancelReason
ExecContext::reason() const
{
    if (!state_)
        return g_signal_flag.load(std::memory_order_relaxed)
                   ? CancelReason::External
                   : CancelReason::None;
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_relaxed));
}

bool
ExecContext::chargeMem(MemSubsystem sub, int64_t delta) const
{
    if (!state_ || !state_->governor)
        return true;
    if (state_->governor->charge(sub, delta))
        return true;
    requestCancel(CancelReason::MemBudget);
    return false;
}

void
installSignalCancellation()
{
    struct sigaction action = {};
    action.sa_handler = signalCancelHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: interrupt blocking syscalls
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

bool
signalCancelRequested()
{
    return g_signal_flag.load(std::memory_order_relaxed) != 0;
}

void
clearSignalCancellation()
{
    g_signal_flag.store(0, std::memory_order_relaxed);
}

} // namespace seer
