/**
 * @file
 * Unified execution governance: one cancellation token carrying a
 * deadline, a memory budget, and an external-cancel flag, threaded
 * through every long-running subsystem (runner, extraction, external
 * pass evaluation, verification, the interpreter).
 *
 * The design goals, in order:
 *  - Zero-observable-cost when ungoverned: a default-constructed
 *    ExecContext has no shared state; polling it is one relaxed atomic
 *    load (the process-wide signal flag).
 *  - One question, one answer: "should I stop?" is `canceled()`,
 *    whatever the cause (deadline, memory budget breach, SIGINT). The
 *    cause is preserved in `reason()` for honest reporting.
 *  - Graceful degradation, not exceptions: a budget breach latches the
 *    token; subsystems observe it at their next poll point and wind
 *    down through the existing checkpoint/rollback + best-so-far
 *    extraction machinery. Nothing here throws.
 */
#ifndef SEER_SUPPORT_EXEC_CONTEXT_H_
#define SEER_SUPPORT_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "support/json.h"

namespace seer {

/** Why an ExecContext was canceled (None = still live). */
enum class CancelReason : uint8_t
{
    None = 0,
    Deadline,  ///< the wall-clock deadline passed
    MemBudget, ///< the memory budget was breached
    External,  ///< an external request (SIGINT/SIGTERM or API call)
};

/** Stable lowercase name for a cancel reason (JSON keys / logs). */
const char *cancelReasonName(CancelReason reason);

/** Subsystems with independently-accounted memory. */
enum class MemSubsystem : uint8_t
{
    EGraph = 0, ///< e-graph node/parent/hashcons storage
    Caches,     ///< pass/verification evaluation caches
    Interp,     ///< interpreter heap (runtime buffers)
    Extraction, ///< exact-extraction search frontier/memos
};

constexpr size_t kNumMemSubsystems = 4;

/** Stable lowercase name for a memory subsystem. */
const char *memSubsystemName(MemSubsystem sub);

/** Snapshot of resource accounting (per-subsystem + totals). */
struct ResourceStats
{
    struct Sub
    {
        uint64_t current_bytes = 0;
        uint64_t peak_bytes = 0;
    };
    Sub sub[kNumMemSubsystems];
    uint64_t budget_bytes = 0; ///< 0 = unlimited (accounting only)
    uint64_t current_bytes = 0;
    uint64_t peak_bytes = 0;
    bool breached = false;
};

/** JSON form of a resource snapshot (the stats "resource" section). */
json::Value toJson(const ResourceStats &stats);

/**
 * Thread-safe byte accounting with an optional hard budget. Charges
 * are *approximate* (subsystems report estimated bytes, not malloc
 * truth) — the budget is a governance lever, not an allocator. A
 * breach latches: once over budget, every subsequent charge() reports
 * failure and any attached ExecContext reports cancellation.
 */
class ResourceGovernor
{
  public:
    /** budget_bytes == 0 means account but never breach. */
    explicit ResourceGovernor(uint64_t budget_bytes = 0)
        : budget_bytes_(budget_bytes)
    {}

    /**
     * Adjust subsystem usage by `delta` bytes (negative to credit;
     * clamped at zero). Returns false once the total budget has been
     * breached — callers should stop growing and wind down; they must
     * not treat false as an error to throw on.
     */
    bool charge(MemSubsystem sub, int64_t delta);

    bool breached() const
    {
        return breached_.load(std::memory_order_relaxed);
    }

    uint64_t budgetBytes() const { return budget_bytes_; }

    ResourceStats stats() const;

  private:
    struct Counter
    {
        std::atomic<uint64_t> current{0};
        std::atomic<uint64_t> peak{0};
    };
    Counter sub_[kNumMemSubsystems];
    std::atomic<uint64_t> total_{0};
    std::atomic<uint64_t> total_peak_{0};
    uint64_t budget_bytes_;
    std::atomic<bool> breached_{false};
};

/**
 * Copyable cancellation token. All copies share state: canceling one
 * cancels them all. A default-constructed ExecContext is *inert* — it
 * has no deadline, no budget, and can only report cancellation when
 * the process-wide signal flag (installSignalCancellation) is raised —
 * so legacy call sites and unit tests need no setup.
 *
 * Configure (setDeadline/setDeadlineIn/setGovernor) before sharing
 * across threads;
 * after that, all operations are thread-safe.
 */
class ExecContext
{
  public:
    ExecContext() = default;

    /** A fresh cancelable context (shared state allocated). */
    static ExecContext make();

    /** True when this context carries shared state (not inert). */
    bool valid() const { return state_ != nullptr; }

    void setDeadline(std::chrono::steady_clock::time_point when);
    /** Deadline `seconds` from now (<= 0: already expired). */
    void setDeadlineIn(double seconds);
    std::optional<std::chrono::steady_clock::time_point> deadline() const;

    void setGovernor(std::shared_ptr<ResourceGovernor> governor);
    const std::shared_ptr<ResourceGovernor> &governor() const;

    /** Latch cancellation (idempotent; first reason wins). */
    void requestCancel(CancelReason reason) const;

    /**
     * True when this execution should stop: an explicit cancel was
     * requested, the deadline passed, the memory budget was breached,
     * or the process-wide signal flag is raised. Latches the first
     * observed reason. Cheap enough to poll in inner loops.
     */
    bool canceled() const;

    CancelReason reason() const;

    /**
     * Account `delta` bytes against `sub` on the attached governor
     * (no-op true when inert or ungoverned). On breach, latches
     * MemBudget cancellation and returns false.
     */
    bool chargeMem(MemSubsystem sub, int64_t delta) const;

  private:
    struct State
    {
        std::atomic<uint8_t> reason{0};
        std::optional<std::chrono::steady_clock::time_point> deadline;
        std::shared_ptr<ResourceGovernor> governor;
    };

    std::shared_ptr<State> state_;
};

/**
 * Install SIGINT/SIGTERM handlers that raise the process-wide
 * cancellation flag (observed by every ExecContext, including inert
 * ones). Async-signal-safe: the handler only stores an atomic. A
 * second signal exits immediately (128 + signo) so a wedged process
 * can still be killed from the keyboard.
 */
void installSignalCancellation();

/** True once a cancellation signal has been received. */
bool signalCancelRequested();

/** Clear the signal flag (tests / daemon request boundaries). */
void clearSignalCancellation();

} // namespace seer

#endif // SEER_SUPPORT_EXEC_CONTEXT_H_
