/**
 * @file
 * Stable 64-bit hashing primitives.
 *
 * The external-pass evaluation layer keys its caches on *content*
 * hashes that must be stable across processes (the pass-outcome cache
 * can persist to disk), so everything here hashes bytes — never
 * pointer values or interning-order-dependent symbol ids.
 */
#ifndef SEER_SUPPORT_HASHING_H_
#define SEER_SUPPORT_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace seer {

/** FNV-1a offset basis; the default seed for hash chains. */
inline constexpr uint64_t kHashSeed = 0xcbf29ce484222325ull;

/** FNV-1a over a byte range, continuing from `seed`. */
inline uint64_t
hashBytes(const void *data, size_t size, uint64_t seed = kHashSeed)
{
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Hash a string's characters (not its address). */
inline uint64_t
hashString(std::string_view text, uint64_t seed = kHashSeed)
{
    return hashBytes(text.data(), text.size(), seed);
}

/** splitmix64 finalizer: decorrelates structured integer inputs. */
inline uint64_t
hashMix(uint64_t value)
{
    value += 0x9e3779b97f4a7c15ull;
    value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
    value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
    return value ^ (value >> 31);
}

/** Order-dependent combination of two hashes. */
inline uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    return hashMix(a ^ (hashMix(b) + 0x9e3779b97f4a7c15ull + (a << 6) +
                        (a >> 2)));
}

/** Fold an integer into a hash chain. */
inline uint64_t
hashValue(uint64_t value, uint64_t seed = kHashSeed)
{
    return hashCombine(seed, hashMix(value));
}

} // namespace seer

#endif // SEER_SUPPORT_HASHING_H_
