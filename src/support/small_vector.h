/**
 * @file
 * A small-size-optimized vector.
 *
 * SmallVec<T, N> stores up to N elements inline (no heap allocation)
 * and spills to a heap buffer beyond that. The e-graph stores e-node
 * child lists with it (the vast majority of HLS/SeerLang operators have
 * at most four operands), e-class node lists (most classes hold exactly
 * one node until merges splice them), and op-index buckets — at
 * million-node scale each inline buffer eliminates one heap allocation
 * and one pointer chase per touch.
 *
 * Trivially copyable elements relocate with memcpy; other element types
 * (e.g. ENode, which itself contains a SmallVec) are moved/copied and
 * destroyed properly, chosen at compile time. Only the vector surface
 * the e-graph actually uses is provided: push_back / emplace_back /
 * pop_back / size / index / iteration / equality / clear / reserve /
 * resize / append-style insert.
 */
#ifndef SEER_SUPPORT_SMALL_VECTOR_H_
#define SEER_SUPPORT_SMALL_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

#include "support/error.h"

namespace seer {

template <typename T, unsigned N>
class SmallVec
{
    static_assert(N > 0, "inline capacity must be positive");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVec() = default;

    SmallVec(std::initializer_list<T> init)
    {
        reserve(static_cast<uint32_t>(init.size()));
        for (const T &value : init)
            unsafePushBack(value);
    }

    SmallVec(const SmallVec &other) { assignFrom(other); }

    SmallVec(SmallVec &&other) noexcept { stealFrom(other); }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this == &other)
            return *this;
        destroyAll();
        assignFrom(other);
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&other) noexcept
    {
        if (this == &other)
            return *this;
        destroyAll();
        releaseHeap();
        stealFrom(other);
        return *this;
    }

    ~SmallVec()
    {
        destroyAll();
        releaseHeap();
    }

    T *
    data()
    {
        return capacity_ > N ? heap_ : reinterpret_cast<T *>(inline_);
    }
    const T *
    data() const
    {
        return capacity_ > N ? heap_
                             : reinterpret_cast<const T *>(inline_);
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return capacity_; }

    /** True when the elements spilled to a heap buffer. */
    bool spilled() const { return capacity_ > N; }

    /** Heap bytes owned (0 while inline) — exact storage accounting.
     *  Counts this vector's own buffer only, not heap owned by the
     *  elements themselves. */
    size_t heapBytes() const
    {
        return spilled() ? capacity_ * sizeof(T) : 0;
    }

    T &operator[](size_t i) { return data()[i]; }
    const T &operator[](size_t i) const { return data()[i]; }

    T &back() { return data()[size_ - 1]; }
    const T &back() const { return data()[size_ - 1]; }

    iterator begin() { return data(); }
    iterator end() { return data() + size_; }
    const_iterator begin() const { return data(); }
    const_iterator end() const { return data() + size_; }

    void
    clear()
    {
        destroyAll();
        size_ = 0;
    }

    void
    reserve(size_t capacity)
    {
        if (capacity <= capacity_)
            return;
        grow(static_cast<uint32_t>(capacity));
    }

    /** Resize; new elements are value-initialized. */
    void
    resize(size_t size)
    {
        reserve(size);
        if (size > size_) {
            T *base = data();
            for (size_t i = size_; i < size; ++i)
                new (base + i) T();
        } else if constexpr (!std::is_trivially_destructible_v<T>) {
            T *base = data();
            for (size_t i = size; i < size_; ++i)
                base[i].~T();
        }
        size_ = static_cast<uint32_t>(size);
    }

    void
    push_back(const T &value)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        unsafePushBack(value);
    }

    void
    push_back(T &&value)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        new (data() + size_) T(std::move(value));
        ++size_;
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        T *slot = new (data() + size_) T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    void
    pop_back()
    {
        --size_;
        if constexpr (!std::is_trivially_destructible_v<T>)
            data()[size_].~T();
    }

    /** Append-only insert (the splice the e-graph merge uses): `pos`
     *  must be end(). */
    template <typename It>
    void
    insert(const_iterator pos, It first, It last)
    {
        SEER_ASSERT(pos == data() + size_,
                    "SmallVec::insert only supports appending at end()");
        (void)pos;
        reserve(size_ + static_cast<size_t>(std::distance(first, last)));
        for (; first != last; ++first)
            unsafePushBack(*first);
    }

    bool
    operator==(const SmallVec &other) const
    {
        if (size_ != other.size_)
            return false;
        return std::equal(begin(), end(), other.begin());
    }

    bool operator!=(const SmallVec &other) const
    {
        return !(*this == other);
    }

  private:
    static T *
    allocate(uint32_t capacity)
    {
        return static_cast<T *>(
            ::operator new(static_cast<size_t>(capacity) * sizeof(T)));
    }

    void
    releaseHeap()
    {
        if (capacity_ > N) {
            ::operator delete(heap_);
            capacity_ = N;
        }
    }

    void
    destroyAll()
    {
        if constexpr (!std::is_trivially_destructible_v<T>) {
            T *base = data();
            for (size_t i = 0; i < size_; ++i)
                base[i].~T();
        }
    }

    /** Copy-construct at the back; capacity must already suffice. */
    void
    unsafePushBack(const T &value)
    {
        new (data() + size_) T(value);
        ++size_;
    }

    /** Relocate `count` elements from src to dst (raw) storage. */
    static void
    relocate(T *dst, T *src, size_t count)
    {
        if constexpr (std::is_trivially_copyable_v<T>) {
            std::memcpy(dst, src, count * sizeof(T));
        } else {
            for (size_t i = 0; i < count; ++i) {
                new (dst + i) T(std::move(src[i]));
                src[i].~T();
            }
        }
    }

    void
    grow(uint32_t capacity)
    {
        capacity = std::max<uint32_t>(capacity, N * 2);
        T *heap = allocate(capacity);
        relocate(heap, data(), size_);
        if (capacity_ > N)
            ::operator delete(heap_);
        heap_ = heap;
        capacity_ = capacity;
    }

    void
    assignFrom(const SmallVec &other)
    {
        size_ = 0;
        reserve(other.size_);
        if constexpr (std::is_trivially_copyable_v<T>) {
            std::memcpy(data(), other.data(),
                        other.size_ * sizeof(T));
            size_ = other.size_;
        } else {
            for (size_t i = 0; i < other.size_; ++i)
                unsafePushBack(other.data()[i]);
        }
    }

    /** Take `other`'s storage; leaves it empty. Own elements must be
     *  destroyed and own heap released already. */
    void
    stealFrom(SmallVec &other)
    {
        size_ = other.size_;
        if (other.capacity_ > N) {
            heap_ = other.heap_;
            capacity_ = other.capacity_;
            other.capacity_ = N;
        } else {
            capacity_ = N;
            relocate(reinterpret_cast<T *>(inline_),
                     reinterpret_cast<T *>(other.inline_), size_);
        }
        other.size_ = 0;
    }

    uint32_t size_ = 0;
    uint32_t capacity_ = N;
    union {
        alignas(T) unsigned char inline_[N * sizeof(T)];
        T *heap_;
    };
};

} // namespace seer

#endif // SEER_SUPPORT_SMALL_VECTOR_H_
