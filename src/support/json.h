/**
 * @file
 * A minimal JSON document builder + writer.
 *
 * Bench binaries emit machine-readable run trajectories (per-rule and
 * per-iteration e-graph statistics) next to their human-readable tables;
 * this is the tiny value type they serialize through. Write-only on
 * purpose: nothing in the system parses JSON, so there is no parser to
 * keep sound.
 *
 * Objects preserve insertion order so emitted documents are stable and
 * diffable across runs.
 */
#ifndef SEER_SUPPORT_JSON_H_
#define SEER_SUPPORT_JSON_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace seer::json {

class Value;

/** A JSON array. */
using Array = std::vector<Value>;

/** A JSON object, insertion-ordered. */
using Object = std::vector<std::pair<std::string, Value>>;

/** One JSON value: null, bool, integer, double, string, array, object. */
class Value
{
  public:
    Value() : data_(nullptr) {}
    Value(std::nullptr_t) : data_(nullptr) {}
    Value(bool value) : data_(value) {}
    Value(int value) : data_(static_cast<int64_t>(value)) {}
    Value(unsigned value) : data_(static_cast<int64_t>(value)) {}
    Value(int64_t value) : data_(value) {}
    Value(uint64_t value) : data_(static_cast<int64_t>(value)) {}
    Value(double value) : data_(value) {}
    Value(const char *value) : data_(std::string(value)) {}
    Value(std::string value) : data_(std::move(value)) {}
    Value(Array value) : data_(std::move(value)) {}
    Value(Object value) : data_(std::move(value)) {}

    /** Append a key/value pair; the value must hold an object. */
    void set(std::string key, Value value);

    /** Append an element; the value must hold an array. */
    void push(Value value);

    /** Render; `indent` > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Stream the rendering (same formatting rules as dump). */
    void write(std::ostream &os, int indent = 0) const;

  private:
    void writeAt(std::ostream &os, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, int64_t, double, std::string,
                 Array, Object>
        data_;
};

/** JSON string escaping (quotes, backslashes, control characters). */
std::string escape(const std::string &text);

} // namespace seer::json

#endif // SEER_SUPPORT_JSON_H_
