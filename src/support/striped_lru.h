/**
 * @file
 * A mutex-striped concurrent LRU map with a byte budget.
 *
 * The process-wide evaluation caches (core/pass_eval) sit on the hot
 * path of every optimization session: in daemon mode (`seer-optd`) many
 * concurrent sessions hit one shared store, so a single cache mutex
 * would serialize exactly the stage the cache exists to parallelize.
 * This container stripes the key space over N independent shards, each
 * with its own mutex, hash map, and intrusive LRU list:
 *
 *  - lookups and inserts on different shards never contend;
 *  - each shard enforces a local byte budget (total budget / shards)
 *    by evicting least-recently-used entries, so the global footprint
 *    is bounded without any cross-shard coordination;
 *  - per-shard hit/miss/eviction counters aggregate into cache-level
 *    metrics without a shared stats lock on the fast path.
 *
 * Keys are uint64_t content hashes (already uniformly distributed);
 * the shard index remixes them so the low bits of a structural hash
 * cannot skew the striping. A byte budget of 0 disables eviction (the
 * single-shot CLI default: the cache dies with the process anyway).
 *
 * Eviction and determinism: values memoize a *pure function* of their
 * key, so an eviction can only cost a recomputation, never change a
 * result. Persisted snapshots iterate in sorted key order (forEach),
 * which keeps save files byte-stable regardless of the LRU order the
 * traffic happened to leave behind.
 */
#ifndef SEER_SUPPORT_STRIPED_LRU_H_
#define SEER_SUPPORT_STRIPED_LRU_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace seer {

/** Aggregated (or per-shard) counters of a StripedLru store. */
struct LruMetrics
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t evicted_bytes = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;

    LruMetrics &operator+=(const LruMetrics &other)
    {
        hits += other.hits;
        misses += other.misses;
        insertions += other.insertions;
        evictions += other.evictions;
        evicted_bytes += other.evicted_bytes;
        entries += other.entries;
        bytes += other.bytes;
        return *this;
    }
};

template <typename Value>
class StripedLru
{
  public:
    /**
     * `shards` is rounded up to a power of two. `max_bytes` is the
     * total budget across shards (0 = unlimited, never evict). The
     * charge hook observes every byte delta (inserts positive,
     * evictions/clears negative) — the governance bridge.
     */
    explicit StripedLru(unsigned shards = 16, uint64_t max_bytes = 0,
                        std::function<void(int64_t)> charge = nullptr)
        : max_bytes_(max_bytes), charge_(std::move(charge))
    {
        unsigned rounded = 1;
        while (rounded < shards && rounded < 4096)
            rounded <<= 1;
        shards_.reserve(rounded);
        for (unsigned i = 0; i < rounded; ++i)
            shards_.push_back(std::make_unique<Shard>());
        shard_budget_ = max_bytes_ == 0
                            ? 0
                            : std::max<uint64_t>(1, max_bytes_ / rounded);
    }

    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    uint64_t maxBytes() const { return max_bytes_; }

    /**
     * Copy out the value under `key` (touches the LRU position).
     * `count` controls whether the shard's hit/miss counters tick —
     * probes that the caller accounts for itself pass false.
     */
    std::optional<Value> lookup(uint64_t key, bool count = true)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            if (count)
                ++shard.metrics.misses;
            return std::nullopt;
        }
        if (count)
            ++shard.metrics.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru,
                         it->second.lru_it);
        return it->second.value;
    }

    /** Presence test (touches LRU; counts a hit or a miss). */
    bool contains(uint64_t key)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            ++shard.metrics.misses;
            return false;
        }
        ++shard.metrics.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru,
                         it->second.lru_it);
        return true;
    }

    /**
     * Insert or overwrite `key` charging `bytes` against the shard
     * budget; evicts LRU entries as needed. Returns true when the
     * entry was newly inserted (false: overwrite).
     */
    bool insert(uint64_t key, Value value, int64_t bytes)
    {
        Shard &shard = shardFor(key);
        int64_t delta = 0;
        bool inserted = false;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                delta += bytes - it->second.bytes;
                shard.bytes += bytes - it->second.bytes;
                it->second.value = std::move(value);
                it->second.bytes = bytes;
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second.lru_it);
            } else {
                shard.lru.push_front(key);
                Entry entry;
                entry.value = std::move(value);
                entry.bytes = bytes;
                entry.lru_it = shard.lru.begin();
                shard.map.emplace(key, std::move(entry));
                shard.bytes += bytes;
                delta += bytes;
                ++shard.metrics.insertions;
                inserted = true;
            }
            delta -= evictLocked(shard, key);
        }
        if (charge_ && delta != 0)
            charge_(delta);
        return inserted;
    }

    /** Drop every entry (credits the full byte footprint back). */
    void clear()
    {
        int64_t delta = 0;
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            delta -= shard->bytes;
            shard->map.clear();
            shard->lru.clear();
            shard->bytes = 0;
        }
        if (charge_ && delta != 0)
            charge_(delta);
    }

    size_t size() const
    {
        size_t total = 0;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            total += shard->map.size();
        }
        return total;
    }

    int64_t bytes() const
    {
        int64_t total = 0;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            total += shard->bytes;
        }
        return total;
    }

    LruMetrics metrics() const
    {
        LruMetrics total;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            LruMetrics m = shard->metrics;
            m.entries = shard->map.size();
            m.bytes = static_cast<uint64_t>(
                shard->bytes < 0 ? 0 : shard->bytes);
            total += m;
        }
        return total;
    }

    std::vector<LruMetrics> shardMetrics() const
    {
        std::vector<LruMetrics> out;
        out.reserve(shards_.size());
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            LruMetrics m = shard->metrics;
            m.entries = shard->map.size();
            m.bytes = static_cast<uint64_t>(
                shard->bytes < 0 ? 0 : shard->bytes);
            out.push_back(m);
        }
        return out;
    }

    /**
     * Visit a consistent per-shard snapshot of every (key, value) in
     * globally sorted key order — the byte-stable serialization order.
     * Values are copied out under the shard locks first, so the
     * visitor runs lock-free (it may re-enter the cache).
     */
    void forEachSorted(
        const std::function<void(uint64_t, const Value &)> &fn) const
    {
        std::vector<std::pair<uint64_t, Value>> snapshot;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            for (const auto &[key, entry] : shard->map)
                snapshot.emplace_back(key, entry.value);
        }
        std::sort(snapshot.begin(), snapshot.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[key, value] : snapshot)
            fn(key, value);
    }

  private:
    struct Entry
    {
        Value value;
        int64_t bytes = 0;
        std::list<uint64_t>::iterator lru_it;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<uint64_t, Entry> map;
        /** Front = most recently used; back = eviction candidate. */
        std::list<uint64_t> lru;
        int64_t bytes = 0;
        LruMetrics metrics;
    };

    Shard &shardFor(uint64_t key)
    {
        // Fibonacci remix: decorrelate the shard index from whatever
        // structure the caller's hash left in the low bits.
        uint64_t mixed = key * 0x9E3779B97F4A7C15ull;
        return *shards_[(mixed >> 48) & (shards_.size() - 1)];
    }

    /** Evict LRU entries until the shard fits its budget; never evicts
     *  `protect` (the entry just inserted — an entry larger than the
     *  whole budget stays until something else displaces it). Returns
     *  the bytes credited back. Shard mutex held. */
    int64_t evictLocked(Shard &shard, uint64_t protect)
    {
        if (shard_budget_ == 0)
            return 0;
        int64_t credited = 0;
        while (shard.bytes > static_cast<int64_t>(shard_budget_) &&
               shard.lru.size() > 1) {
            uint64_t victim = shard.lru.back();
            if (victim == protect) {
                // Rotate the fresh entry off the tail and retry.
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 std::prev(shard.lru.end()));
                continue;
            }
            auto it = shard.map.find(victim);
            shard.bytes -= it->second.bytes;
            credited += it->second.bytes;
            ++shard.metrics.evictions;
            shard.metrics.evicted_bytes +=
                static_cast<uint64_t>(it->second.bytes);
            shard.lru.pop_back();
            shard.map.erase(it);
        }
        return credited;
    }

    uint64_t max_bytes_;
    uint64_t shard_budget_ = 0;
    std::function<void(int64_t)> charge_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace seer

#endif // SEER_SUPPORT_STRIPED_LRU_H_
