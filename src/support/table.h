/**
 * @file
 * Plain-text table printing for the benchmark harnesses.
 *
 * Every experiment binary reproduces one of the paper's tables or figures;
 * this helper renders aligned rows so the output can be diffed against
 * EXPERIMENTS.md.
 */
#ifndef SEER_SUPPORT_TABLE_H_
#define SEER_SUPPORT_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace seer {

/** A column-aligned text table with a title and a header row. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with column alignment. */
    void print(std::ostream &os) const;

    /** Format a double with the given precision, trimming noise. */
    static std::string num(double value, int precision = 3);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace seer

#endif // SEER_SUPPORT_TABLE_H_
