#include "support/json.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "support/error.h"

namespace seer::json {

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
Value::set(std::string key, Value value)
{
    Object *object = std::get_if<Object>(&data_);
    SEER_ASSERT(object, "json::Value::set on a non-object value");
    object->emplace_back(std::move(key), std::move(value));
}

void
Value::push(Value value)
{
    Array *array = std::get_if<Array>(&data_);
    SEER_ASSERT(array, "json::Value::push on a non-array value");
    array->push_back(std::move(value));
}

namespace {

void
newline(std::ostream &os, int indent, int depth)
{
    if (indent <= 0)
        return;
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Value::writeAt(std::ostream &os, int indent, int depth) const
{
    if (std::holds_alternative<std::nullptr_t>(data_)) {
        os << "null";
    } else if (const bool *b = std::get_if<bool>(&data_)) {
        os << (*b ? "true" : "false");
    } else if (const int64_t *i = std::get_if<int64_t>(&data_)) {
        os << *i;
    } else if (const double *d = std::get_if<double>(&data_)) {
        if (std::isfinite(*d)) {
            std::ostringstream num;
            num.precision(12);
            num << *d;
            os << num.str();
        } else {
            os << "null"; // JSON has no inf/nan
        }
    } else if (const std::string *s = std::get_if<std::string>(&data_)) {
        os << '"' << escape(*s) << '"';
    } else if (const Array *array = std::get_if<Array>(&data_)) {
        if (array->empty()) {
            os << "[]";
            return;
        }
        os << '[';
        for (size_t i = 0; i < array->size(); ++i) {
            if (i > 0)
                os << (indent > 0 ? "," : ", ");
            newline(os, indent, depth + 1);
            (*array)[i].writeAt(os, indent, depth + 1);
        }
        newline(os, indent, depth);
        os << ']';
    } else if (const Object *object = std::get_if<Object>(&data_)) {
        if (object->empty()) {
            os << "{}";
            return;
        }
        os << '{';
        for (size_t i = 0; i < object->size(); ++i) {
            if (i > 0)
                os << (indent > 0 ? "," : ", ");
            newline(os, indent, depth + 1);
            os << '"' << escape((*object)[i].first) << "\": ";
            (*object)[i].second.writeAt(os, indent, depth + 1);
        }
        newline(os, indent, depth);
        os << '}';
    }
}

void
Value::write(std::ostream &os, int indent) const
{
    writeAt(os, indent, 0);
}

std::string
Value::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

} // namespace seer::json
