/**
 * @file
 * Interned string symbols.
 *
 * Symbols are the currency of the e-graph layer: every SeerLang operator
 * (including ones carrying encoded static attributes, e.g. "const:42:i32")
 * is an interned string, so comparison and hashing are O(1).
 */
#ifndef SEER_SUPPORT_SYMBOL_H_
#define SEER_SUPPORT_SYMBOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace seer {

/**
 * An interned string. Two Symbols constructed from equal strings compare
 * equal by id. The intern table is process-global and never shrinks.
 */
class Symbol
{
  public:
    /** The empty symbol (id 0 interns ""). */
    Symbol();

    /** Intern a string. */
    explicit Symbol(std::string_view text);

    /** The interned text. Valid for the lifetime of the process. */
    const std::string &str() const;

    uint32_t id() const { return id_; }
    bool empty() const { return id_ == 0; }

    bool operator==(const Symbol &other) const { return id_ == other.id_; }
    bool operator!=(const Symbol &other) const { return id_ != other.id_; }
    bool operator<(const Symbol &other) const { return id_ < other.id_; }

  private:
    uint32_t id_;
};

} // namespace seer

template <>
struct std::hash<seer::Symbol>
{
    size_t
    operator()(const seer::Symbol &s) const noexcept
    {
        return std::hash<uint32_t>()(s.id());
    }
};

#endif // SEER_SUPPORT_SYMBOL_H_
