#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace seer {

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "seer panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace seer
