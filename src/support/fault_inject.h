/**
 * @file
 * Seeded fault injection: named injection points across subsystems,
 * driven by a replayable FaultPlan. Generalizes the two ad-hoc hooks
 * (--inject-crash-rule, --inject-unsound) into a framework the chaos
 * harness (`seer-corpus --chaos`) and the no-throw contract tests
 * sweep systematically.
 *
 * Every fault a plan can trigger is *contract-preserving by design*:
 * allocation points throw std::bad_alloc (which optimize() must
 * contain), pass-eval points produce crashes/timeouts/garbage the
 * validation gate must absorb, cache points drop or refuse entries
 * (never silently corrupt a payload), and RollbackMidPhase raises a
 * FatalError on the transactional-phase boundary. A run under any
 * plan must therefore still deliver verifier-clean IR — that is the
 * invariant the chaos sweep asserts.
 *
 * The injector is process-global (the production code it hooks must
 * stay oblivious to test plumbing), so only one plan can be armed at
 * a time and chaos runs are single-threaded per process.
 */
#ifndef SEER_SUPPORT_FAULT_INJECT_H_
#define SEER_SUPPORT_FAULT_INJECT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace seer {

/** Named injection points (point -> subsystem -> expected degradation
 *  is tabulated in DESIGN.md's failure-handling policy). */
enum class FaultPoint : uint8_t
{
    EGraphAlloc = 0,  ///< e-graph node admission throws bad_alloc
    ExtractAlloc,     ///< extraction entry throws bad_alloc
    InterpAlloc,      ///< runtime buffer allocation throws bad_alloc
    CacheAlloc,       ///< eval-cache insertion throws bad_alloc
    PassEvalCrash,    ///< external pass throws mid-transform
    PassEvalTimeout,  ///< external pass evaluation "never finishes"
    PassEvalGarbage,  ///< external pass returns a garbage replacement
    CacheRead,        ///< cached entry reads back corrupt (dropped)
    CacheSave,        ///< cache persistence fails before publish
    RollbackMidPhase, ///< fault on the transactional-phase boundary
};

constexpr size_t kNumFaultPoints = 10;

/** Stable kebab-case name (plan syntax / JSON / artifacts). */
const char *faultPointName(FaultPoint point);

std::optional<FaultPoint> parseFaultPoint(const std::string &name);

/**
 * A replayable fault schedule. Two composable mechanisms:
 *  - `rate`: every hit of every point fires independently with this
 *    probability, derived deterministically from (seed, point, hit
 *    index) — same plan + same execution => same faults.
 *  - `fixed`: fire exactly at the Nth hit (1-based) of a point —
 *    the surgical mode the no-throw sweep uses.
 */
struct FaultPlan
{
    uint64_t seed = 0;
    double rate = 0.0;
    std::vector<std::pair<FaultPoint, uint64_t>> fixed;

    bool enabled() const { return rate > 0.0 || !fixed.empty(); }

    /** Round-trippable text form, e.g.
     *  "seed=7;rate=0.02" or "fixed=egraph-alloc@3,cache-read@1". */
    std::string str() const;
    static std::optional<FaultPlan> parse(const std::string &text);
};

/**
 * The process-global injector. Disarmed it costs one relaxed atomic
 * load per query; armed it serializes hit counting behind a mutex
 * (chaos runs are single-threaded, so this is not a hot path).
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Install `plan` and reset all hit counters. */
    void arm(const FaultPlan &plan);
    void disarm();
    bool armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Count a hit of `point`; true when the plan fires a fault. */
    bool shouldFire(FaultPoint point);

    /** Hits of `point` since the last arm(). */
    uint64_t hits(FaultPoint point) const;

    FaultPlan plan() const;

  private:
    FaultInjector() = default;

    mutable std::mutex mutex_;
    std::atomic<bool> armed_{false};
    FaultPlan plan_;
    uint64_t hits_[kNumFaultPoints] = {};
};

/** Convenience: should the armed plan (if any) fire at `point`? */
inline bool
faultFire(FaultPoint point)
{
    return FaultInjector::instance().shouldFire(point);
}

/** RAII arm/disarm (tests, per-case chaos scopes). */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan &plan)
    {
        FaultInjector::instance().arm(plan);
    }
    ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }
    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace seer

#endif // SEER_SUPPORT_FAULT_INJECT_H_
