#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.h"

namespace seer {

namespace {
/** Sentinel row meaning "draw a separator line". */
const std::string kSeparator = "\x01sep";
} // namespace

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    SEER_ASSERT(header_.empty() || row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.push_back({kSeparator});
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i)
        widths[i] = header_[i].size();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparator)
            continue;
        for (size_t i = 0; i < row.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    size_t total = 0;
    for (size_t w : widths)
        total += w + 3;

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[i]) + 3)
               << cell;
        }
        os << "\n";
    };

    os << "== " << title_ << " ==\n";
    print_row(header_);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparator)
            os << std::string(total, '-') << "\n";
        else
            print_row(row);
    }
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::setprecision(precision);
    if (value != 0 && (std::abs(value) >= 1e6 || std::abs(value) < 1e-3))
        os << std::scientific;
    os << value;
    return os.str();
}

} // namespace seer
