/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomized components (workload generators, randomized equivalence
 * checking, property tests) draw from this SplitMix64 generator so runs are
 * reproducible from a seed.
 */
#ifndef SEER_SUPPORT_RNG_H_
#define SEER_SUPPORT_RNG_H_

#include <cstdint>

namespace seer {

/** SplitMix64: tiny, fast, and statistically adequate for test inputs. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform signed value in [lo, hi]. */
    int64_t
    nextRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        nextBelow(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t state_;
};

} // namespace seer

#endif // SEER_SUPPORT_RNG_H_
