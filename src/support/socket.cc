#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace seer::net {

namespace {

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
}

/** Fill a sockaddr_un; false when the path does not fit sun_path. */
bool
fillAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0) {
        // EINTR after close is unspecified; never retry close().
        ::close(fd_);
        fd_ = -1;
    }
}

Fd
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr)) {
        if (error)
            *error = "socket path too long: " + path;
        return Fd();
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        setError(error, "socket");
        return Fd();
    }
    // The daemon owns its socket path: a stale file from a previous
    // (crashed) instance must not block startup.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, "bind " + path);
        return Fd();
    }
    if (::listen(fd.get(), 64) != 0) {
        setError(error, "listen " + path);
        return Fd();
    }
    return fd;
}

Fd
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr)) {
        if (error)
            *error = "socket path too long: " + path;
        return Fd();
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        setError(error, "socket");
        return Fd();
    }
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        setError(error, "connect " + path);
        return Fd();
    }
    return fd;
}

Fd
acceptClient(int listen_fd, std::string *error)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return Fd(fd);
        if (errno == EINTR)
            continue;
        // A client that connected and vanished before accept() is a
        // non-event, not a server failure.
        if (errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            return Fd();
        setError(error, "accept");
        return Fd();
    }
}

namespace {

IoStatus
sendAll(int fd, const char *data, size_t size, std::string *error)
{
    size_t sent = 0;
    while (sent < size) {
        ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "send");
            return IoStatus::Error;
        }
        sent += static_cast<size_t>(n);
    }
    return IoStatus::Ok;
}

/** Read exactly `size` bytes; Eof only when nothing was read yet. */
IoStatus
recvAll(int fd, char *data, size_t size, std::string *error)
{
    size_t got = 0;
    while (got < size) {
        ssize_t n = ::recv(fd, data + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "recv");
            return IoStatus::Error;
        }
        if (n == 0) {
            if (got == 0)
                return IoStatus::Eof;
            if (error)
                *error = "connection closed mid-frame";
            return IoStatus::Error;
        }
        got += static_cast<size_t>(n);
    }
    return IoStatus::Ok;
}

} // namespace

IoStatus
sendFrame(int fd, std::string_view payload, std::string *error)
{
    std::string header = std::to_string(payload.size());
    header.push_back('\n');
    IoStatus status =
        sendAll(fd, header.data(), header.size(), error);
    if (status != IoStatus::Ok)
        return status;
    return sendAll(fd, payload.data(), payload.size(), error);
}

IoStatus
recvFrame(int fd, std::string &payload, std::string *error,
          uint64_t max_bytes)
{
    // The header is a handful of digits: byte-at-a-time reads keep the
    // code trivially correct and cost nothing against a pass pipeline.
    std::string header;
    for (;;) {
        char c;
        IoStatus status = recvAll(fd, &c, 1, error);
        if (status == IoStatus::Eof)
            return header.empty() ? IoStatus::Eof : IoStatus::Error;
        if (status != IoStatus::Ok)
            return status;
        if (c == '\n')
            break;
        if (c < '0' || c > '9' || header.size() > 19) {
            if (error)
                *error = "malformed frame header";
            return IoStatus::Error;
        }
        header.push_back(c);
    }
    if (header.empty()) {
        if (error)
            *error = "malformed frame header";
        return IoStatus::Error;
    }
    uint64_t length = std::stoull(header);
    if (length > max_bytes) {
        if (error)
            *error = "frame of " + header + " bytes exceeds the " +
                     std::to_string(max_bytes) + "-byte limit";
        return IoStatus::TooLarge;
    }
    payload.resize(length);
    if (length == 0)
        return IoStatus::Ok;
    IoStatus status = recvAll(fd, payload.data(), length, error);
    if (status == IoStatus::Eof) {
        if (error)
            *error = "connection closed mid-frame";
        return IoStatus::Error;
    }
    return status;
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int rc;
    do {
        rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    return rc > 0 &&
           (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

bool
peerHungUp(int fd)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = static_cast<short>(POLLRDHUP);
    int rc;
    do {
        rc = ::poll(&pfd, 1, 0);
    } while (rc < 0 && errno == EINTR);
    return rc > 0 && (pfd.revents &
                      (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0;
}

} // namespace seer::net
