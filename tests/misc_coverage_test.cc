/**
 * @file
 * Odds and ends: runner stop reasons, term-equivalence edge cases,
 * while-loop programs through the full SEER pipeline, and support
 * formatting helpers.
 */
#include <gtest/gtest.h>

#include "core/seer.h"
#include "core/verify.h"
#include "egraph/runner.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/error.h"
#include "support/table.h"

namespace seer {
namespace {

TEST(RunnerStopTest, TimeLimitTriggers)
{
    eg::EGraph egraph;
    egraph.addTerm(eg::parseTerm("(f x)"));
    eg::RunnerOptions options;
    options.max_iters = 1000000;
    options.max_nodes = 100000000;
    options.time_limit_seconds = 0.0; // expire immediately after iter 1
    eg::Runner runner(egraph, options);
    runner.addRule(eg::makeRewrite("explode", "(f ?x)", "(f (g ?x))"));
    eg::RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, eg::StopReason::TimeLimit);
    EXPECT_EQ(eg::stopReasonName(report.stop), "time-limit");
}

TEST(RunnerStopTest, AllStopReasonsHaveNames)
{
    for (auto reason :
         {eg::StopReason::Saturated, eg::StopReason::IterLimit,
          eg::StopReason::NodeLimit, eg::StopReason::TimeLimit,
          eg::StopReason::BannedOut}) {
        EXPECT_FALSE(eg::stopReasonName(reason).empty());
        EXPECT_NE(eg::stopReasonName(reason), "?");
    }
}

TEST(TermEquivalenceEdgeTest, TypeMismatchedArgsFail)
{
    // Same arg name at two types across the sides: must be rejected,
    // not crash.
    auto lhs = eg::parseTerm("(arith.addi:i32 arg:x:i32 arg:x:i32)");
    auto rhs = eg::parseTerm(
        "(arith.addi:i32 (arith.trunci:i64:i32 arg:x:i64) "
        "(arith.trunci:i64:i32 arg:x:i64))");
    std::string diag;
    EXPECT_FALSE(core::checkTermEquivalence(lhs, rhs, {}, &diag));
    EXPECT_FALSE(diag.empty());
}

TEST(TermEquivalenceEdgeTest, FloatTermsCompare)
{
    auto lhs = eg::parseTerm("(arith.addf:f64 arg:x:f64 arg:y:f64)");
    auto rhs = eg::parseTerm("(arith.addf:f64 arg:y:f64 arg:x:f64)");
    EXPECT_TRUE(core::checkTermEquivalence(lhs, rhs));
    auto wrong = eg::parseTerm("(arith.subf:f64 arg:x:f64 arg:y:f64)");
    EXPECT_FALSE(core::checkTermEquivalence(lhs, wrong));
}

TEST(SeerWhileTest, WhileLoopsSurviveTheFullPipeline)
{
    // A while-based accumulator: SEER must keep it sound even though
    // whiles never pipeline.
    const char *text = R"(
func.func @wl(%a: memref<16xi32>, %s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %one = arith.constant 1 : i32
  %n = arith.constant 16 : i32
  memref.store %zero, %s[%z] : memref<1xi32>
  scf.while {
    %v = memref.load %s[%z] : memref<1xi32>
    %cond = arith.cmpi slt, %v, %n : i32
    scf.condition %cond
  } do {
    %v = memref.load %s[%z] : memref<1xi32>
    %vi = arith.index_cast %v : i32 to index
    %x = memref.load %a[%vi] : memref<16xi32>
    %x2 = arith.addi %x, %x : i32
    memref.store %x2, %a[%vi] : memref<16xi32>
    %vp = arith.addi %v, %one : i32
    memref.store %vp, %s[%z] : memref<1xi32>
  }
})";
    ir::Module input = ir::parseModule(text);
    core::SeerResult result = core::optimize(input, "wl");
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, result.module, "wl",
                                             {}, &diag))
        << diag << "\n" << ir::toString(result.module);
    // The while survived (no unsound while-to-for conversion exists).
    bool has_while = false;
    ir::walk(result.module, [&](ir::Operation &op) {
        if (ir::isa(op, ir::opnames::kWhile))
            has_while = true;
    });
    EXPECT_TRUE(has_while);
}

TEST(TableFormatTest, NumFormatsRanges)
{
    EXPECT_EQ(TextTable::num(0), "0");
    EXPECT_EQ(TextTable::num(1.5), "1.5");
    // Very large and very small switch to scientific.
    EXPECT_NE(TextTable::num(1.5e7).find("e"), std::string::npos);
    EXPECT_NE(TextTable::num(1.5e-7).find("e"), std::string::npos);
}

TEST(SeerStatsTest, TimeSplitIsConsistent)
{
    ir::Module input = ir::parseModule(R"(
func.func @f(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %a[%i] : memref<8xi32>
  }
})");
    core::SeerResult result = core::optimize(input, "f");
    EXPECT_GE(result.stats.time_in_passes_seconds, 0.0);
    EXPECT_GE(result.stats.time_in_egraph_seconds, 0.0);
    EXPECT_LE(result.stats.time_in_passes_seconds +
                  result.stats.time_in_egraph_seconds,
              result.stats.total_seconds + 1e-6);
}

TEST(SeerRobustnessTest, MissingFunctionIsFatal)
{
    ir::Module input = ir::parseModule("func.func @f() {}");
    EXPECT_THROW(core::optimize(input, "nope"), FatalError);
}

TEST(SeerRobustnessTest, EmptyFunctionOptimizes)
{
    ir::Module input = ir::parseModule("func.func @f() {}");
    core::SeerResult result = core::optimize(input, "f");
    EXPECT_EQ(ir::verify(result.module), "");
}

} // namespace
} // namespace seer
