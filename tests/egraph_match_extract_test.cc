/** E-matching, rewriting/runner, and extraction tests. */
#include <gtest/gtest.h>

#include "egraph/extract.h"
#include "egraph/pattern.h"
#include "egraph/runner.h"

namespace seer::eg {
namespace {

TEST(PatternTest, ParseAndVariables)
{
    PatternPtr p = parsePattern("(add ?a (mul ?b ?a))");
    EXPECT_FALSE(p->isVar());
    auto vars = p->variables();
    ASSERT_EQ(vars.size(), 2u);
    EXPECT_EQ(vars[0].str(), "a");
    EXPECT_EQ(vars[1].str(), "b");
    EXPECT_EQ(p->str(), "(add ?a (mul ?b ?a))");
}

TEST(EMatchTest, SimpleMatch)
{
    EGraph eg;
    eg.addTerm(parseTerm("(add x y)"));
    auto matches = ematch(eg, *parsePattern("(add ?a ?b)"));
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].subst.size(), 2u);
}

TEST(EMatchTest, NonLinearPatternRequiresSameClass)
{
    EGraph eg;
    eg.addTerm(parseTerm("(add x x)"));
    eg.addTerm(parseTerm("(add x y)"));
    auto matches = ematch(eg, *parsePattern("(add ?a ?a)"));
    ASSERT_EQ(matches.size(), 1u);
}

TEST(EMatchTest, NonLinearMatchesAfterUnion)
{
    EGraph eg;
    EClassId root = eg.addTerm(parseTerm("(add x y)"));
    (void)root;
    auto before = ematch(eg, *parsePattern("(add ?a ?a)"));
    EXPECT_EQ(before.size(), 0u);
    eg.merge(*eg.lookupTerm(parseTerm("x")),
             *eg.lookupTerm(parseTerm("y")));
    eg.rebuild();
    auto after = ematch(eg, *parsePattern("(add ?a ?a)"));
    EXPECT_EQ(after.size(), 1u);
}

TEST(EMatchTest, NestedPatterns)
{
    EGraph eg;
    eg.addTerm(parseTerm("(mul (add a b) c)"));
    auto matches = ematch(eg, *parsePattern("(mul (add ?x ?y) ?z)"));
    ASSERT_EQ(matches.size(), 1u);
    const Subst &s = matches[0].subst;
    EXPECT_EQ(s.at(Symbol("x")), *eg.lookupTerm(parseTerm("a")));
    EXPECT_EQ(s.at(Symbol("z")), *eg.lookupTerm(parseTerm("c")));
}

TEST(EMatchTest, MatchesAcrossEquivalentNodes)
{
    // After union {mul2, shift}, a pattern over mul still matches the
    // class that also holds the shift node.
    EGraph eg;
    EClassId m = eg.addTerm(parseTerm("(mul a const:2)"));
    EClassId s = eg.addTerm(parseTerm("(shl a const:1)"));
    eg.merge(m, s);
    eg.rebuild();
    EXPECT_EQ(ematch(eg, *parsePattern("(mul ?x const:2)")).size(), 1u);
    EXPECT_EQ(ematch(eg, *parsePattern("(shl ?x const:1)")).size(), 1u);
}

TEST(EMatchTest, LimitCapsMatches)
{
    EGraph eg;
    for (int i = 0; i < 10; ++i) {
        eg.addTerm(parseTerm("(neg leaf" + std::to_string(i) + ")"));
    }
    EXPECT_EQ(ematch(eg, *parsePattern("(neg ?x)")).size(), 10u);
    EXPECT_EQ(ematch(eg, *parsePattern("(neg ?x)"), 3).size(), 3u);
}

TEST(RunnerTest, CommutativitySaturates)
{
    EGraph eg;
    EClassId root = eg.addTerm(parseTerm("(add x y)"));
    Runner runner(eg);
    runner.addRule(makeRewrite("comm-add", "(add ?a ?b)", "(add ?b ?a)"));
    RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, StopReason::Saturated);
    // (add y x) must now be in the same class.
    auto other = eg.lookupTerm(parseTerm("(add y x)"));
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(eg.find(*other), eg.find(root));
}

TEST(RunnerTest, ChainOfRewritesReachesTarget)
{
    // (mul a const:2) -> (shl a const:1); then shl-of-shl fuses.
    EGraph eg;
    EClassId root =
        eg.addTerm(parseTerm("(mul (mul a const:2) const:2)"));
    Runner runner(eg);
    runner.addRule(
        makeRewrite("mul2-shl", "(mul ?a const:2)", "(shl ?a const:1)"));
    runner.run();
    auto target = eg.lookupTerm(parseTerm("(shl (shl a const:1) const:1)"));
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(eg.find(*target), eg.find(root));
}

TEST(RunnerTest, ConditionVetoesMatches)
{
    EGraph eg;
    EClassId root = eg.addTerm(parseTerm("(div x x)"));
    Runner runner(eg);
    runner.addRule(makeRewrite(
        "div-self", "(div ?a ?a)", "one",
        [](const EGraph &, const Match &) { return false; }));
    RunnerReport report = runner.run();
    EXPECT_EQ(report.total_applied, 0u);
    EXPECT_EQ(eg.find(root), eg.find(*eg.lookupTerm(parseTerm("(div x x)"))));
    EXPECT_FALSE(eg.lookupTerm(parseTerm("one")).has_value());
}

TEST(RunnerTest, DynamicRewriteProducesTerm)
{
    EGraph eg;
    EClassId root = eg.addTerm(parseTerm("(wrap seed)"));
    Runner runner(eg);
    runner.addRule(makeDynRewrite(
        "unwrap", "(wrap ?x)",
        [](EGraph &, const Match &) -> std::optional<TermPtr> {
            return parseTerm("expanded");
        }));
    runner.run();
    auto expanded = eg.lookupTerm(parseTerm("expanded"));
    ASSERT_TRUE(expanded.has_value());
    EXPECT_EQ(eg.find(*expanded), eg.find(root));
}

TEST(RunnerTest, RecordsCarryGroundTerms)
{
    EGraph eg;
    eg.addTerm(parseTerm("(add x y)"));
    Runner runner(eg);
    runner.addRule(makeRewrite("comm-add", "(add ?a ?b)", "(add ?b ?a)"));
    RunnerReport report = runner.run();
    ASSERT_GE(report.records.size(), 1u);
    EXPECT_EQ(report.records[0].rule, "comm-add");
    EXPECT_EQ(report.records[0].lhs->str(), "(add x y)");
    EXPECT_EQ(report.records[0].rhs->str(), "(add y x)");
}

TEST(RunnerTest, NodeLimitStops)
{
    // Exploding rule: f(x) -> f(g(x)) grows forever.
    EGraph eg;
    eg.addTerm(parseTerm("(f x)"));
    RunnerOptions options;
    options.max_nodes = 100;
    options.max_iters = 1000;
    Runner runner(eg, options);
    runner.addRule(makeRewrite("explode", "(f ?x)", "(f (g ?x))"));
    RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, StopReason::NodeLimit);
    EXPECT_LE(eg.numNodes(), 300u); // limit plus one iteration of slack
}

TEST(RunnerTest, IterLimitStops)
{
    EGraph eg;
    eg.addTerm(parseTerm("(f x)"));
    RunnerOptions options;
    options.max_iters = 3;
    options.max_nodes = 1000000;
    Runner runner(eg, options);
    runner.addRule(makeRewrite("explode", "(f ?x)", "(f (g ?x))"));
    RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, StopReason::IterLimit);
    EXPECT_EQ(report.iterations.size(), 3u);
}

TEST(RunnerTest, BackoffBansExplosiveRules)
{
    EGraph eg;
    for (int i = 0; i < 50; ++i)
        eg.addTerm(parseTerm("(h leaf" + std::to_string(i) + ")"));
    RunnerOptions options;
    options.match_limit = 10; // triggers the ban immediately
    options.max_iters = 2;
    Runner runner(eg, options);
    runner.addRule(makeRewrite("swap", "(h ?x)", "(h2 ?x)"));
    RunnerReport report = runner.run();
    // Egg semantics: the first match_limit matches apply, then the rule
    // is banned; with the ban outliving max_iters the run is banned
    // out, not saturated.
    EXPECT_EQ(report.total_applied, 10u);
    EXPECT_EQ(report.rules[0].bans, 1u);
    EXPECT_EQ(report.stop, StopReason::BannedOut);
}

// --- Extraction -------------------------------------------------------

/** Toy cost: leaves cost 0, shl costs 1, add costs 2, mul costs 10. */
class ToyCost : public CostModel
{
  public:
    double
    nodeCost(const ENode &node) const override
    {
        const std::string &op = node.op.str();
        if (op == "mul") return 10;
        if (op == "add") return 2;
        if (op == "shl") return 1;
        if (op == "forbidden") return kInfinity;
        return 0;
    }
};

TEST(ExtractTest, GreedyPicksCheaperNode)
{
    EGraph eg;
    EClassId m = eg.addTerm(parseTerm("(mul a const:2)"));
    EClassId s = eg.addTerm(parseTerm("(shl a const:1)"));
    eg.merge(m, s);
    eg.rebuild();
    ToyCost cost;
    auto extraction = extractGreedy(eg, m, cost);
    ASSERT_TRUE(extraction.has_value());
    EXPECT_EQ(extraction->term->str(), "(shl a const:1)");
    EXPECT_EQ(extraction->tree_cost, 1);
}

TEST(ExtractTest, GreedyRecursesThroughChildren)
{
    EGraph eg;
    EClassId root =
        eg.addTerm(parseTerm("(add (mul a const:2) (mul a const:2))"));
    EClassId m = *eg.lookupTerm(parseTerm("(mul a const:2)"));
    EClassId s = eg.addTerm(parseTerm("(shl a const:1)"));
    eg.merge(m, s);
    eg.rebuild();
    ToyCost cost;
    auto extraction = extractGreedy(eg, root, cost);
    EXPECT_EQ(extraction->term->str(),
              "(add (shl a const:1) (shl a const:1))");
    // Tree cost counts the shared shl twice; DAG cost once.
    EXPECT_EQ(extraction->tree_cost, 4);
    EXPECT_EQ(extraction->dag_cost, 3);
}

TEST(ExtractTest, InfeasibleWhenOnlyForbiddenNodes)
{
    EGraph eg;
    EClassId root = eg.addTerm(parseTerm("(forbidden x)"));
    ToyCost cost;
    EXPECT_FALSE(extractGreedy(eg, root, cost).has_value());
}

TEST(ExtractTest, ZeroCostCycleNotSelected)
{
    // x unioned with (id x): size tie-break must pick the leaf.
    EGraph eg;
    EClassId x = eg.addTerm(parseTerm("x"));
    EClassId idx = eg.addTerm(parseTerm("(id x)"));
    eg.merge(x, idx);
    eg.rebuild();
    ToyCost cost; // id costs 0, same as leaf
    auto extraction = extractGreedy(eg, x, cost);
    ASSERT_TRUE(extraction.has_value());
    EXPECT_EQ(extraction->term->str(), "x");
}

/** Costs whose sums differ only by float roundoff: 0.1 + 0.7 is one ulp
 *  below the literal 0.8. */
class RoundoffCost : public CostModel
{
  public:
    double
    nodeCost(const ENode &node) const override
    {
        const std::string &op = node.op.str();
        if (op == "s") return 0.8;
        if (op == "t") return 0.1;
        if (op == "wrap") return 0.7;
        return 0;
    }
};

TEST(ExtractTest, RoundoffTiesBreakBySizeNotUlps)
{
    // (wrap t) sums to 0.7999999999999999 — one ulp below the leaf's
    // 0.8. Exact float comparison would let the roundoff decide (and
    // platforms with different FP contraction would disagree); the
    // epsilon tie-break must treat the costs as equal and pick the
    // smaller term.
    EGraph eg;
    EClassId s = eg.addTerm(parseTerm("s"));
    EClassId big = eg.addTerm(parseTerm("(wrap t)"));
    eg.merge(s, big);
    eg.rebuild();
    RoundoffCost cost;
    auto extraction = extractGreedy(eg, s, cost);
    ASSERT_TRUE(extraction.has_value());
    EXPECT_EQ(extraction->term->str(), "s");
}

TEST(ExtractTest, GreedyExtractionIsDeterministic)
{
    // Two independently built copies of the same e-graph must extract
    // the identical term, twice each (same graph, same answer).
    auto build = [] {
        EGraph eg;
        EClassId root = eg.addTerm(
            parseTerm("(add (mul a const:2) (mul a const:2))"));
        EClassId m = *eg.lookupTerm(parseTerm("(mul a const:2)"));
        EClassId shifted = eg.addTerm(parseTerm("(shl a const:1)"));
        eg.merge(m, shifted);
        eg.rebuild();
        return std::pair{std::move(eg), root};
    };
    ToyCost cost;
    auto [eg1, root1] = build();
    auto [eg2, root2] = build();
    auto first = extractGreedy(eg1, root1, cost);
    auto again = extractGreedy(eg1, root1, cost);
    auto other = extractGreedy(eg2, root2, cost);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->term->str(), again->term->str());
    EXPECT_EQ(first->term->str(), other->term->str());
    EXPECT_EQ(first->tree_cost, other->tree_cost);
    EXPECT_EQ(first->dag_cost, other->dag_cost);
}

TEST(ExtractTest, SmallestTermExtraction)
{
    EGraph eg;
    EClassId big = eg.addTerm(parseTerm("(add (add a a) (add a a))"));
    EClassId small = eg.addTerm(parseTerm("(quad a)"));
    eg.merge(big, small);
    eg.rebuild();
    EXPECT_EQ(extractSmallest(eg, big)->str(), "(quad a)");
}

TEST(ExtractTest, ExactExtractionExploitsSharing)
{
    // Root can be (add u u) with u = (mul a b), or (sq2 v) with
    // v = (expensive a b). Greedy tree cost prefers whichever, but the
    // exact DAG extraction must count shared u once.
    EGraph eg;
    EClassId root = eg.addTerm(
        parseTerm("(add (mul a const:2) (mul a const:2))"));
    ToyCost cost;
    auto exact = extractExact(eg, root, cost);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(exact->dag_cost, 12); // add(2) + one shared mul(10)
}

TEST(ExtractTest, ExactBeatsGreedyOnSharedChoice)
{
    // Class P = {(f a), (g b)} used twice under root.
    // cost(f)=3, cost(g)=4 for the node itself, but choosing g makes b
    // reusable by another part of the root that needs (need b).
    // Construct: root = (pair P (h b)); picking g shares b.
    EGraph eg;
    EClassId fa = eg.addTerm(parseTerm("(addc a)"));   // cost 5 below
    EClassId gb = eg.addTerm(parseTerm("(mulc b)"));   // cost 6 below
    eg.merge(fa, gb);
    eg.rebuild();
    EClassId root = eg.addTerm(parseTerm("(pair (addc a) (hop b))"));

    class LocalCost : public CostModel
    {
      public:
        double
        nodeCost(const ENode &node) const override
        {
            const std::string &op = node.op.str();
            if (op == "addc") return 5;
            if (op == "mulc") return 6;
            if (op == "hop") return 1;
            if (op == "pair") return 0;
            if (op == "a") return 4; // leaf a is expensive
            if (op == "b") return 0;
            return 0;
        }
    } cost;

    // Greedy per-class: addc(5)+a(4)=9 vs mulc(6)+b(0)=6 -> picks mulc.
    auto greedy = extractGreedy(eg, root, cost);
    EXPECT_EQ(greedy->term->str(), "(pair (mulc b) (hop b))");
    auto exact = extractExact(eg, root, cost);
    // exact: pair(0) + mulc(6) + b(0) + hop(1) = 7.
    EXPECT_EQ(exact->dag_cost, 7);
}

TEST(ExtractTest, ExactRespectsForbiddenNodes)
{
    EGraph eg;
    EClassId bad = eg.addTerm(parseTerm("(forbidden x)"));
    EClassId good = eg.addTerm(parseTerm("(add x x)"));
    eg.merge(bad, good);
    eg.rebuild();
    ToyCost cost;
    auto exact = extractExact(eg, bad, cost);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(exact->term->str(), "(add x x)");
}

} // namespace
} // namespace seer::eg
