/**
 * Scheduler-focused runner tests: egg-faithful backoff (over-budget
 * rules still apply their first budget-many matches), no false
 * saturation while bans are pending, ban expiry/decay, in-phase time
 * limits, and per-rule statistics.
 *
 * The first two tests are regressions against the seed scheduler, which
 * (a) discarded *all* matches of an over-limit rule (starving it
 * forever) and (b) reported Saturated whenever an iteration applied
 * zero unions, even when that was only because every rule was banned.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>

#include "egraph/runner.h"
#include "support/error.h"

namespace seer::eg {
namespace {

/** An e-graph holding n distinct (h leaf_i) terms: the rule
 *  (h ?x) -> (h2 ?x) then has exactly n matches, each yielding one
 *  fresh union, and stays at n matches forever (h2 nodes don't match). */
EGraph
fanoutGraph(int n)
{
    EGraph eg;
    for (int i = 0; i < n; ++i)
        eg.addTerm(parseTerm("(h leaf" + std::to_string(i) + ")"));
    return eg;
}

Rewrite
swapRule()
{
    return makeRewrite("swap", "(h ?x)", "(h2 ?x)");
}

TEST(BackoffTest, OverBudgetRuleStillAppliesItsBudget)
{
    // Seed behavior: 50 matches > limit 10 -> everything discarded,
    // total_applied == 0. Egg semantics: the first 10 matches apply,
    // *then* the rule is banned.
    EGraph eg = fanoutGraph(50);
    RunnerOptions options;
    options.match_limit = 10;
    options.max_iters = 1;
    Runner runner(eg, options);
    runner.addRule(swapRule());
    RunnerReport report = runner.run();
    EXPECT_EQ(report.total_applied, 10u);
    ASSERT_EQ(report.rules.size(), 1u);
    EXPECT_EQ(report.rules[0].name, "swap");
    EXPECT_EQ(report.rules[0].matches, 10u);
    EXPECT_EQ(report.rules[0].applications, 10u);
    EXPECT_EQ(report.rules[0].bans, 1u);
}

TEST(BackoffTest, AlwaysExplosiveRuleStillContributesUnions)
{
    // match_limit=1: the rule is over budget every single iteration it
    // runs, yet must keep contributing unions between bans.
    EGraph eg = fanoutGraph(50);
    RunnerOptions options;
    options.match_limit = 1;
    options.ban_length = 1;
    options.max_iters = 30;
    Runner runner(eg, options);
    runner.addRule(swapRule());
    RunnerReport report = runner.run();
    EXPECT_GE(report.total_applied, 4u);
    EXPECT_GE(report.rules[0].bans, 2u);
}

TEST(BackoffTest, BannedOutRunIsNotReportedSaturated)
{
    // Regression: with one explosive rule and match_limit=1, iteration 2
    // has zero active rules and zero unions; the seed reported that as
    // Saturated. It must surface as BannedOut (bans pending past the
    // iteration horizon), never as saturation.
    EGraph eg = fanoutGraph(50);
    RunnerOptions options;
    options.match_limit = 1;
    options.max_iters = 3; // ban span (default 5) outlives the horizon
    Runner runner(eg, options);
    runner.addRule(swapRule());
    RunnerReport report = runner.run();
    EXPECT_NE(report.stop, StopReason::Saturated);
    EXPECT_EQ(report.stop, StopReason::BannedOut);
    EXPECT_EQ(report.total_applied, 1u);
    EXPECT_EQ(stopReasonName(report.stop), "banned-out");
}

TEST(BackoffTest, BansExpireAndRunConvergesToSaturation)
{
    // The escalating budget (match_limit << times_banned) must
    // eventually cover all 50 matches, after which a genuinely quiet,
    // ban-free iteration reports honest saturation.
    EGraph eg = fanoutGraph(50);
    RunnerOptions options;
    options.match_limit = 8;
    options.ban_length = 1;
    options.max_iters = 30;
    Runner runner(eg, options);
    runner.addRule(swapRule());
    RunnerReport report = runner.run();
    EXPECT_EQ(report.total_applied, 50u);
    EXPECT_EQ(report.stop, StopReason::Saturated);
    // Skipped all-banned spans appear as gaps in the trajectory.
    ASSERT_GE(report.iterations.size(), 2u);
    for (size_t i = 1; i < report.iterations.size(); ++i) {
        EXPECT_GT(report.iterations[i].iter,
                  report.iterations[i - 1].iter);
    }
}

TEST(BackoffTest, BanLevelDecaysAfterCleanIterations)
{
    // 6 matches with limit 4: one ban lifts the budget to 8, which then
    // covers everything; ban_decay_iters clean iterations later the ban
    // level must fall back to zero.
    EGraph eg = fanoutGraph(6);
    RunnerOptions options;
    options.match_limit = 4;
    options.ban_length = 1;
    options.ban_decay_iters = 2;
    options.max_iters = 30;
    Runner runner(eg, options);
    runner.addRule(swapRule());
    RunnerReport report = runner.run();
    EXPECT_EQ(report.total_applied, 6u);
    EXPECT_EQ(report.rules[0].bans, 1u);
    EXPECT_EQ(report.rules[0].times_banned, 0u); // decayed back down

    // Control: with decay disabled the elevated ban level persists.
    EGraph eg2 = fanoutGraph(6);
    options.ban_decay_iters = 1000000;
    Runner runner2(eg2, options);
    runner2.addRule(swapRule());
    RunnerReport report2 = runner2.run();
    EXPECT_EQ(report2.rules[0].times_banned, 1u);
}

TEST(TimeLimitTest, EnforcedInsideTheMatchPhase)
{
    // Zero budget: the runner must stop during the first match phase,
    // before applying anything — not after a full iteration.
    EGraph eg = fanoutGraph(50);
    RunnerOptions options;
    options.time_limit_seconds = 0.0;
    options.max_iters = 1000000;
    Runner runner(eg, options);
    runner.addRule(swapRule());
    RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, StopReason::TimeLimit);
    EXPECT_EQ(report.total_applied, 0u);
    EXPECT_TRUE(report.iterations.empty());
}

TEST(TimeLimitTest, ThreadedMatchPhaseAlsoHonorsTheLimit)
{
    EGraph eg = fanoutGraph(50);
    RunnerOptions options;
    options.time_limit_seconds = 0.0;
    options.match_jobs = 4;
    Runner runner(eg, options);
    runner.addRule(swapRule());
    runner.addRule(makeRewrite("swap2", "(h2 ?x)", "(h3 ?x)"));
    RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, StopReason::TimeLimit);
    EXPECT_EQ(report.total_applied, 0u);
}

TEST(RuleStatsTest, PerRuleCountersAndTimesAreTracked)
{
    EGraph eg;
    eg.addTerm(parseTerm("(add x y)"));
    Runner runner(eg);
    runner.addRule(makeRewrite("comm", "(add ?a ?b)", "(add ?b ?a)"));
    runner.addRule(makeRewrite("never", "(sub ?a ?b)", "(sub ?b ?a)"));
    RunnerReport report = runner.run();
    ASSERT_EQ(report.rules.size(), 2u);
    EXPECT_EQ(report.rules[0].name, "comm");
    EXPECT_GE(report.rules[0].matches, 1u);
    EXPECT_EQ(report.rules[0].applications, 1u);
    EXPECT_EQ(report.rules[0].bans, 0u);
    EXPECT_GE(report.rules[0].search_seconds, 0.0);
    EXPECT_EQ(report.rules[1].name, "never");
    EXPECT_EQ(report.rules[1].matches, 0u);
    EXPECT_EQ(report.rules[1].applications, 0u);
    // The iteration trajectory carries the scheduler view too.
    ASSERT_FALSE(report.iterations.empty());
    EXPECT_EQ(report.iterations[0].iter, 1u);
    EXPECT_EQ(report.iterations[0].banned_rules, 0u);
}

TEST(RuleStatsTest, ReportSerializesToJson)
{
    EGraph eg = fanoutGraph(5);
    RunnerOptions options;
    options.match_limit = 2;
    options.max_iters = 2;
    Runner runner(eg, options);
    runner.addRule(swapRule());
    RunnerReport report = runner.run();
    std::string text = toJson(report).dump();
    EXPECT_NE(text.find("\"stop\""), std::string::npos);
    EXPECT_NE(text.find("\"rules\""), std::string::npos);
    EXPECT_NE(text.find("\"swap\""), std::string::npos);
    EXPECT_NE(text.find("\"iterations\""), std::string::npos);
    EXPECT_NE(text.find("\"bans\": 1"), std::string::npos);
    // Match-phase instrumentation: per-rule search counters plus the
    // aggregated match_phase block. Existing keys above must stay
    // stable — downstream consumers parse this schema.
    EXPECT_NE(text.find("\"search_candidates\""), std::string::npos);
    EXPECT_NE(text.find("\"search_skipped_clean\""), std::string::npos);
    EXPECT_NE(text.find("\"match_phase\""), std::string::npos);
    EXPECT_NE(text.find("\"candidates_visited\""), std::string::npos);
    EXPECT_NE(text.find("\"skipped_clean\""), std::string::npos);
    EXPECT_NE(text.find("\"cached_matches_reused\""), std::string::npos);
    EXPECT_NE(text.find("\"index_scans\""), std::string::npos);
    EXPECT_NE(text.find("\"full_scans\""), std::string::npos);
    EXPECT_NE(text.find("\"incremental_scans\""), std::string::npos);
    EXPECT_NE(text.find("\"index_hit_rate\""), std::string::npos);
}

TEST(SchedulerInteractionTest, CleanRulesKeepRunningWhileOneIsBanned)
{
    // A banned explosive rule must not freeze the rest of the rule set:
    // the chain f -> g -> k only completes via the second rule firing in
    // an iteration where the first sits banned.
    EGraph eg = fanoutGraph(50);
    eg.addTerm(parseTerm("(f x)"));
    RunnerOptions options;
    options.match_limit = 5;
    options.ban_length = 2;
    options.max_iters = 10;
    Runner runner(eg, options);
    runner.addRule(swapRule()); // explosive: banned in iteration 1
    runner.addRule(makeRewrite("f-to-g", "(f ?a)", "(g ?a)"));
    runner.addRule(makeRewrite("g-to-k", "(g ?a)", "(k ?a)"));
    RunnerReport report = runner.run();
    auto k = eg.lookupTerm(parseTerm("(k x)"));
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(eg.find(*k), eg.find(*eg.lookupTerm(parseTerm("(f x)"))));
    EXPECT_GE(report.rules[0].bans, 1u);
}

// --- Fault isolation (PR 2) -------------------------------------------

/** A dynamic rule whose applier always throws. */
Rewrite
crashingRule()
{
    return makeDynRewrite(
        "crasher", "(h ?x)",
        [](EGraph &, const Match &) -> std::optional<TermPtr> {
            fatal("boom");
        });
}

TEST(QuarantineTest, CrashingRuleIsQuarantinedAndRunContinues)
{
    // The crashing rule trips the circuit breaker after
    // quarantine_after consecutive failures; the healthy rule keeps
    // rewriting and the run completes normally.
    EGraph eg = fanoutGraph(10);
    RunnerOptions options;
    options.max_iters = 10;
    options.quarantine_after = 3;
    Runner runner(eg, options);
    runner.addRule(crashingRule());
    runner.addRule(swapRule());
    RunnerReport report = runner.run();

    EXPECT_GT(report.total_applied, 0u); // swap still fired
    EXPECT_EQ(report.rules_quarantined, 1u);
    ASSERT_EQ(report.rules.size(), 2u);
    EXPECT_TRUE(report.rules[0].quarantined);
    EXPECT_GE(report.rules[0].failures, 3u);
    EXPECT_FALSE(report.rules[1].quarantined);
    EXPECT_FALSE(report.recovered_errors.empty());
    EXPECT_NE(report.recovered_errors[0].find("crasher"),
              std::string::npos);
    EXPECT_NE(report.recovered_errors[0].find("boom"),
              std::string::npos);
    EXPECT_EQ(eg.debugCheckInvariants(), "");
}

TEST(QuarantineTest, AllRulesQuarantinedStopsTheRun)
{
    EGraph eg = fanoutGraph(5);
    RunnerOptions options;
    options.max_iters = 100;
    options.quarantine_after = 2;
    Runner runner(eg, options);
    runner.addRule(crashingRule());
    RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, StopReason::Quarantined);
    EXPECT_EQ(report.total_applied, 0u);
    EXPECT_EQ(eg.debugCheckInvariants(), "");
}

TEST(QuarantineTest, StrictModeRethrowsTheFirstFailure)
{
    EGraph eg = fanoutGraph(5);
    RunnerOptions options;
    options.catch_rule_errors = false;
    Runner runner(eg, options);
    runner.addRule(crashingRule());
    EXPECT_THROW(runner.run(), FatalError);
    // The failed application never unioned anything.
    EXPECT_EQ(eg.debugCheckInvariants(), "");
}

TEST(QuarantineTest, IntermittentFailuresDoNotTripTheBreaker)
{
    // Failures must be *consecutive* to quarantine: a rule that
    // recovers in between keeps running (only backoff applies).
    EGraph eg = fanoutGraph(1);
    auto calls = std::make_shared<int>(0);
    Rewrite flaky = makeDynRewrite(
        "flaky", "(h ?x)",
        [calls](EGraph &, const Match &) -> std::optional<TermPtr> {
            if (++*calls <= 2)
                fatal("transient failure");
            return std::nullopt; // applies nothing, but succeeds
        });
    RunnerOptions options;
    options.max_iters = 8;
    options.quarantine_after = 3;
    Runner runner(eg, options);
    runner.addRule(flaky);
    RunnerReport report = runner.run();
    ASSERT_EQ(report.rules.size(), 1u);
    EXPECT_FALSE(report.rules[0].quarantined);
    EXPECT_GE(report.rules[0].failures, 2u);
    EXPECT_EQ(report.rules_quarantined, 0u);
}

TEST(QuarantineTest, FailedApplicationsLeaveNoTrace)
{
    // A guarded dynamic application is transactional: junk the applier
    // added to the e-graph before crashing must be rolled back, not
    // left to poison later matching/extraction.
    EGraph eg = fanoutGraph(3);
    size_t nodes_before = eg.numNodes();
    Rewrite dirty = makeDynRewrite(
        "dirty-crasher", "(h ?x)",
        [](EGraph &egraph, const Match &) -> std::optional<TermPtr> {
            egraph.addTerm(parseTerm("(junk junk-leaf)"));
            fatal("crash after mutating");
        });
    RunnerOptions options;
    options.max_iters = 5;
    Runner runner(eg, options);
    runner.addRule(dirty);
    RunnerReport report = runner.run();
    EXPECT_GE(report.rules[0].failures, 1u);
    EXPECT_EQ(eg.numNodes(), nodes_before);
    EXPECT_FALSE(eg.lookupTerm(parseTerm("(junk junk-leaf)")));
    EXPECT_EQ(eg.debugCheckInvariants(), "");
}

TEST(DeadlineTest, ExpiredDeadlineStopsTheRunImmediately)
{
    EGraph eg = fanoutGraph(50);
    RunnerOptions options;
    options.max_iters = 100;
    options.exec = ExecContext::make();
    options.exec.setDeadline(std::chrono::steady_clock::now());
    Runner runner(eg, options);
    runner.addRule(swapRule());
    RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, StopReason::Canceled);
    EXPECT_EQ(report.total_applied, 0u);
}

} // namespace
} // namespace seer::eg
