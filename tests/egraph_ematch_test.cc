/**
 * Differential tests for the indexed / incremental e-matcher: the
 * compiled, index-driven path (ematch / ematchDirty) must produce the
 * exact match list — same set, same order — as the pre-index reference
 * matcher (ematchNaive), on randomized e-graphs, across random union
 * sequences, and across checkpoint/rollback.
 */
#include <gtest/gtest.h>

#include <random>

#include "egraph/pattern.h"
#include "egraph/runner.h"
#include "rover/rover.h"

namespace seer::eg {
namespace {

/** Canonicalize a match so lists taken at different times compare. */
Match
canon(const EGraph &eg, const Match &m)
{
    Match out;
    out.root = eg.find(m.root);
    for (const auto &[var, id] : m.subst)
        out.subst[var] = eg.find(id);
    return out;
}

bool
sameMatch(const Match &a, const Match &b)
{
    return a.root == b.root && a.subst == b.subst;
}

/** Exact list equality: same matches in the same order. */
void
expectSameMatchList(const std::vector<Match> &got,
                    const std::vector<Match> &want, const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(sameMatch(got[i], want[i]))
            << what << ": mismatch at index " << i << " (root " << got[i].root
            << " vs " << want[i].root << ")";
    }
}

/** The pattern pool every differential test matches with: linear,
 *  non-linear, nested, wide, and the bare-variable full scan. */
std::vector<PatternPtr>
patternPool()
{
    return {
        parsePattern("(f ?x ?y)"),
        parsePattern("(f ?x ?x)"),
        parsePattern("(f (g ?x) ?y)"),
        parsePattern("(g (f ?x ?y))"),
        parsePattern("(k ?a ?b ?a)"),
        parsePattern("(f (f ?a ?b) (g ?c))"),
        parsePattern("?v"),
    };
}

/** Grow a random e-graph: random nodes over a small op pool wired to
 *  random existing classes, then a burst of random unions + rebuild. */
struct RandomGraph
{
    EGraph eg;
    std::vector<EClassId> ids;

    explicit RandomGraph(uint32_t seed, size_t adds = 120,
                         size_t unions = 25)
    {
        std::mt19937 rng(seed);
        const std::pair<const char *, size_t> ops[] = {
            {"f", 2}, {"g", 1}, {"h", 2}, {"k", 3},
            {"a", 0}, {"b", 0}, {"c", 0}, {"d", 0},
        };
        // Seed with leaves so early nodes have children to pick.
        for (size_t i = 4; i < 8; ++i)
            ids.push_back(eg.add(ENode{Symbol(ops[i].first), {}}));
        for (size_t i = 0; i < adds; ++i) {
            const auto &[op, arity] = ops[rng() % 8];
            ENode node{Symbol(op), {}};
            for (size_t c = 0; c < arity; ++c)
                node.children.push_back(ids[rng() % ids.size()]);
            ids.push_back(eg.add(node));
        }
        for (size_t i = 0; i < unions; ++i) {
            eg.merge(ids[rng() % ids.size()], ids[rng() % ids.size()]);
            if (rng() % 4 == 0)
                eg.rebuild();
        }
        eg.rebuild();
    }
};

TEST(EMatchDifferentialTest, IndexedEqualsNaiveOnRandomGraphs)
{
    for (uint32_t seed = 1; seed <= 8; ++seed) {
        RandomGraph g(seed);
        ASSERT_EQ(g.eg.debugCheckInvariants(), "") << "seed " << seed;
        for (const PatternPtr &p : patternPool()) {
            auto indexed = ematch(g.eg, *p);
            auto naive = ematchNaive(g.eg, *p);
            expectSameMatchList(indexed, naive, p->str().c_str());
        }
    }
}

TEST(EMatchDifferentialTest, LimitTruncatesIdenticalPrefix)
{
    RandomGraph g(42);
    for (const PatternPtr &p : patternPool()) {
        auto full = ematch(g.eg, *p);
        for (size_t limit : {size_t(1), size_t(3), full.size() + 1}) {
            auto capped = ematch(g.eg, *p, limit);
            auto capped_naive = ematchNaive(g.eg, *p, limit);
            size_t want = std::min(limit, full.size());
            ASSERT_EQ(capped.size(), want);
            expectSameMatchList(capped, capped_naive, "limit");
            for (size_t i = 0; i < capped.size(); ++i)
                EXPECT_TRUE(sameMatch(capped[i], full[i]));
        }
    }
}

/** ematchDirty(watermark) + the surviving clean-rooted old matches must
 *  reassemble exactly the fresh full match list (the runner's cache
 *  merge invariant). */
TEST(EMatchDifferentialTest, DirtyPlusCleanCacheEqualsFullRescan)
{
    for (uint32_t seed = 100; seed < 104; ++seed) {
        RandomGraph g(seed);
        std::mt19937 rng(seed * 7 + 1);
        for (const PatternPtr &p : patternPool()) {
            auto before = ematch(g.eg, *p);
            uint64_t watermark = g.eg.tick();

            // Mutate: a few adds and unions, then rebuild (dirtiness
            // propagates to ancestor cones only at rebuild).
            for (int i = 0; i < 6; ++i) {
                ENode node{Symbol("f"),
                           {g.ids[rng() % g.ids.size()],
                            g.ids[rng() % g.ids.size()]}};
                g.ids.push_back(g.eg.add(node));
            }
            g.eg.merge(g.ids[rng() % g.ids.size()],
                       g.ids[rng() % g.ids.size()]);
            g.eg.rebuild();

            auto full = ematch(g.eg, *p);
            auto dirty = ematchDirty(g.eg, *p, watermark);

            std::vector<Match> merged;
            size_t di = 0;
            for (const Match &m : before) {
                if (g.eg.find(m.root) != m.root)
                    continue; // root lost its canonicity: superseded
                if (g.eg.timestampOf(m.root) > watermark)
                    continue; // dirty root: re-found by ematchDirty
                while (di < dirty.size() && dirty[di].root < m.root)
                    merged.push_back(canon(g.eg, dirty[di++]));
                merged.push_back(canon(g.eg, m));
            }
            while (di < dirty.size())
                merged.push_back(canon(g.eg, dirty[di++]));

            std::vector<Match> full_canon;
            for (const Match &m : full)
                full_canon.push_back(canon(g.eg, m));
            expectSameMatchList(merged, full_canon, p->str().c_str());
        }
    }
}

TEST(EMatchDifferentialTest, MatchesRestoredAcrossRollback)
{
    for (uint32_t seed = 7; seed < 10; ++seed) {
        RandomGraph g(seed);
        std::mt19937 rng(seed);
        auto pool = patternPool();

        std::vector<std::vector<Match>> before;
        for (const PatternPtr &p : pool)
            before.push_back(ematch(g.eg, *p));
        uint64_t generation = g.eg.rollbackGeneration();

        auto cp = g.eg.checkpoint();
        for (int i = 0; i < 10; ++i) {
            ENode node{Symbol("g"), {g.ids[rng() % g.ids.size()]}};
            g.eg.add(node);
        }
        g.eg.merge(g.ids[rng() % g.ids.size()],
                   g.ids[rng() % g.ids.size()]);
        g.eg.rebuild();
        g.eg.rollback(cp);

        ASSERT_EQ(g.eg.debugCheckInvariants(), "") << "seed " << seed;
        EXPECT_GT(g.eg.rollbackGeneration(), generation)
            << "rollback must invalidate incremental caches";
        for (size_t i = 0; i < pool.size(); ++i) {
            auto after = ematch(g.eg, *pool[i]);
            auto naive = ematchNaive(g.eg, *pool[i]);
            expectSameMatchList(after, before[i], "restored after rollback");
            expectSameMatchList(after, naive, "vs naive after rollback");
        }
    }
}

TEST(EMatchDifferentialTest, StatsReflectIndexAndWatermark)
{
    RandomGraph g(3);
    PatternPtr p = parsePattern("(f ?x ?y)");

    EMatchStats stats;
    ematch(g.eg, *p, 0, &stats);
    EXPECT_TRUE(stats.used_index);
    EXPECT_GT(stats.candidates_visited, 0u);

    // Nothing changed since the current tick: the watermark filters
    // every candidate out.
    EMatchStats clean;
    auto none = ematchDirty(g.eg, *p, g.eg.tick(), 0, &clean);
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(clean.candidates_visited, 0u);
    EXPECT_GT(clean.skipped_clean, 0u);

    // Bare variable: no head operator to index on.
    EMatchStats bare;
    ematch(g.eg, *parsePattern("?v"), 0, &bare);
    EXPECT_FALSE(bare.used_index);
}

/** End-to-end: a rover saturation run must be bit-identical between the
 *  naive reference matcher and the indexed + incremental default. */
TEST(RunnerDifferentialTest, NaiveAndIndexedRunsAreIdentical)
{
    auto runOnce = [](bool naive) {
        EGraph eg(rover::roverAnalysisHooks());
        eg.addTerm(parseTerm(
            "(arith.addi:i32 (arith.muli:i32 var:x const:12:i32) "
            "(arith.addi:i32 (arith.muli:i32 var:y const:6:i32) "
            "(arith.muli:i32 var:x const:3:i32)))"));
        RunnerOptions options;
        options.max_iters = 6;
        options.max_nodes = 20000;
        options.record_proofs = false;
        options.naive_match = naive;
        options.incremental_match = !naive;
        Runner runner(eg, options);
        runner.addRules(rover::roverRules());
        RunnerReport report = runner.run();
        std::vector<size_t> per_rule;
        for (const RuleStats &rule : report.rules)
            per_rule.push_back(rule.matches);
        return std::make_tuple(report.total_applied,
                               report.iterations.size(), eg.numNodes(),
                               eg.numClasses(), per_rule);
    };

    auto naive = runOnce(true);
    auto indexed = runOnce(false);
    EXPECT_EQ(std::get<0>(naive), std::get<0>(indexed));
    EXPECT_EQ(std::get<1>(naive), std::get<1>(indexed));
    EXPECT_EQ(std::get<2>(naive), std::get<2>(indexed));
    EXPECT_EQ(std::get<3>(naive), std::get<3>(indexed));
    EXPECT_EQ(std::get<4>(naive), std::get<4>(indexed))
        << "per-rule match counts must not depend on the matcher";
}

} // namespace
} // namespace seer::eg
