/**
 * Differential tests for the indexed / incremental e-matcher: the
 * compiled, index-driven path (ematch / ematchDirty) must produce the
 * exact match list — same set, same order — as the pre-index reference
 * matcher (ematchNaive), on randomized e-graphs, across random union
 * sequences, and across checkpoint/rollback.
 */
#include <gtest/gtest.h>

#include <random>

#include "egraph/pattern.h"
#include "egraph/runner.h"
#include "rover/rover.h"
#include "support/error.h"

namespace seer::eg {
namespace {

/** Canonicalize a match so lists taken at different times compare. */
Match
canon(const EGraph &eg, const Match &m)
{
    Match out;
    out.root = eg.find(m.root);
    for (const auto &[var, id] : m.subst)
        out.subst[var] = eg.find(id);
    return out;
}

bool
sameMatch(const Match &a, const Match &b)
{
    return a.root == b.root && a.subst == b.subst;
}

/** Exact list equality: same matches in the same order. */
void
expectSameMatchList(const std::vector<Match> &got,
                    const std::vector<Match> &want, const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(sameMatch(got[i], want[i]))
            << what << ": mismatch at index " << i << " (root " << got[i].root
            << " vs " << want[i].root << ")";
    }
}

/** The pattern pool every differential test matches with: linear,
 *  non-linear, nested, wide, and the bare-variable full scan. */
std::vector<PatternPtr>
patternPool()
{
    return {
        parsePattern("(f ?x ?y)"),
        parsePattern("(f ?x ?x)"),
        parsePattern("(f (g ?x) ?y)"),
        parsePattern("(g (f ?x ?y))"),
        parsePattern("(k ?a ?b ?a)"),
        parsePattern("(f (f ?a ?b) (g ?c))"),
        parsePattern("?v"),
    };
}

/** Grow a random e-graph: random nodes over a small op pool wired to
 *  random existing classes, then a burst of random unions + rebuild. */
struct RandomGraph
{
    EGraph eg;
    std::vector<EClassId> ids;

    explicit RandomGraph(uint32_t seed, size_t adds = 120,
                         size_t unions = 25)
    {
        std::mt19937 rng(seed);
        const std::pair<const char *, size_t> ops[] = {
            {"f", 2}, {"g", 1}, {"h", 2}, {"k", 3},
            {"a", 0}, {"b", 0}, {"c", 0}, {"d", 0},
        };
        // Seed with leaves so early nodes have children to pick.
        for (size_t i = 4; i < 8; ++i)
            ids.push_back(eg.add(ENode{Symbol(ops[i].first), {}}));
        for (size_t i = 0; i < adds; ++i) {
            const auto &[op, arity] = ops[rng() % 8];
            ENode node{Symbol(op), {}};
            for (size_t c = 0; c < arity; ++c)
                node.children.push_back(ids[rng() % ids.size()]);
            ids.push_back(eg.add(node));
        }
        for (size_t i = 0; i < unions; ++i) {
            eg.merge(ids[rng() % ids.size()], ids[rng() % ids.size()]);
            if (rng() % 4 == 0)
                eg.rebuild();
        }
        eg.rebuild();
    }
};

TEST(EMatchDifferentialTest, IndexedEqualsNaiveOnRandomGraphs)
{
    for (uint32_t seed = 1; seed <= 8; ++seed) {
        RandomGraph g(seed);
        ASSERT_EQ(g.eg.debugCheckInvariants(), "") << "seed " << seed;
        for (const PatternPtr &p : patternPool()) {
            auto indexed = ematch(g.eg, *p);
            auto naive = ematchNaive(g.eg, *p);
            expectSameMatchList(indexed, naive, p->str().c_str());
        }
    }
}

TEST(EMatchDifferentialTest, LimitTruncatesIdenticalPrefix)
{
    RandomGraph g(42);
    for (const PatternPtr &p : patternPool()) {
        auto full = ematch(g.eg, *p);
        for (size_t limit : {size_t(1), size_t(3), full.size() + 1}) {
            auto capped = ematch(g.eg, *p, limit);
            auto capped_naive = ematchNaive(g.eg, *p, limit);
            size_t want = std::min(limit, full.size());
            ASSERT_EQ(capped.size(), want);
            expectSameMatchList(capped, capped_naive, "limit");
            for (size_t i = 0; i < capped.size(); ++i)
                EXPECT_TRUE(sameMatch(capped[i], full[i]));
        }
    }
}

/** ematchDirty(watermark) + the surviving clean-rooted old matches must
 *  reassemble exactly the fresh full match list (the runner's cache
 *  merge invariant). */
TEST(EMatchDifferentialTest, DirtyPlusCleanCacheEqualsFullRescan)
{
    for (uint32_t seed = 100; seed < 104; ++seed) {
        RandomGraph g(seed);
        std::mt19937 rng(seed * 7 + 1);
        for (const PatternPtr &p : patternPool()) {
            auto before = ematch(g.eg, *p);
            uint64_t watermark = g.eg.tick();

            // Mutate: a few adds and unions, then rebuild (dirtiness
            // propagates to ancestor cones only at rebuild).
            for (int i = 0; i < 6; ++i) {
                ENode node{Symbol("f"),
                           {g.ids[rng() % g.ids.size()],
                            g.ids[rng() % g.ids.size()]}};
                g.ids.push_back(g.eg.add(node));
            }
            g.eg.merge(g.ids[rng() % g.ids.size()],
                       g.ids[rng() % g.ids.size()]);
            g.eg.rebuild();

            auto full = ematch(g.eg, *p);
            auto dirty = ematchDirty(g.eg, *p, watermark);

            std::vector<Match> merged;
            size_t di = 0;
            for (const Match &m : before) {
                if (g.eg.find(m.root) != m.root)
                    continue; // root lost its canonicity: superseded
                if (g.eg.timestampOf(m.root) > watermark)
                    continue; // dirty root: re-found by ematchDirty
                while (di < dirty.size() && dirty[di].root < m.root)
                    merged.push_back(canon(g.eg, dirty[di++]));
                merged.push_back(canon(g.eg, m));
            }
            while (di < dirty.size())
                merged.push_back(canon(g.eg, dirty[di++]));

            std::vector<Match> full_canon;
            for (const Match &m : full)
                full_canon.push_back(canon(g.eg, m));
            expectSameMatchList(merged, full_canon, p->str().c_str());
        }
    }
}

TEST(EMatchDifferentialTest, MatchesRestoredAcrossRollback)
{
    for (uint32_t seed = 7; seed < 10; ++seed) {
        RandomGraph g(seed);
        std::mt19937 rng(seed);
        auto pool = patternPool();

        std::vector<std::vector<Match>> before;
        for (const PatternPtr &p : pool)
            before.push_back(ematch(g.eg, *p));
        uint64_t generation = g.eg.rollbackGeneration();

        auto cp = g.eg.checkpoint();
        for (int i = 0; i < 10; ++i) {
            ENode node{Symbol("g"), {g.ids[rng() % g.ids.size()]}};
            g.eg.add(node);
        }
        g.eg.merge(g.ids[rng() % g.ids.size()],
                   g.ids[rng() % g.ids.size()]);
        g.eg.rebuild();
        g.eg.rollback(cp);

        ASSERT_EQ(g.eg.debugCheckInvariants(), "") << "seed " << seed;
        EXPECT_GT(g.eg.rollbackGeneration(), generation)
            << "rollback must invalidate incremental caches";
        for (size_t i = 0; i < pool.size(); ++i) {
            auto after = ematch(g.eg, *pool[i]);
            auto naive = ematchNaive(g.eg, *pool[i]);
            expectSameMatchList(after, before[i], "restored after rollback");
            expectSameMatchList(after, naive, "vs naive after rollback");
        }
    }
}

TEST(EMatchDifferentialTest, StatsReflectIndexAndWatermark)
{
    RandomGraph g(3);
    PatternPtr p = parsePattern("(f ?x ?y)");

    EMatchStats stats;
    ematch(g.eg, *p, 0, &stats);
    EXPECT_TRUE(stats.used_index);
    EXPECT_GT(stats.candidates_visited, 0u);

    // Nothing changed since the current tick: the watermark filters
    // every candidate out.
    EMatchStats clean;
    auto none = ematchDirty(g.eg, *p, g.eg.tick(), 0, &clean);
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(clean.candidates_visited, 0u);
    EXPECT_GT(clean.skipped_clean, 0u);

    // Bare variable: no head operator to index on.
    EMatchStats bare;
    ematch(g.eg, *parsePattern("?v"), 0, &bare);
    EXPECT_FALSE(bare.used_index);
}

/** End-to-end: a rover saturation run must be bit-identical between the
 *  naive reference matcher and the indexed + incremental default. */
TEST(RunnerDifferentialTest, NaiveAndIndexedRunsAreIdentical)
{
    auto runOnce = [](bool naive) {
        EGraph eg(rover::roverAnalysisHooks());
        eg.addTerm(parseTerm(
            "(arith.addi:i32 (arith.muli:i32 var:x const:12:i32) "
            "(arith.addi:i32 (arith.muli:i32 var:y const:6:i32) "
            "(arith.muli:i32 var:x const:3:i32)))"));
        RunnerOptions options;
        options.max_iters = 6;
        options.max_nodes = 20000;
        options.record_proofs = false;
        options.naive_match = naive;
        options.incremental_match = !naive;
        Runner runner(eg, options);
        runner.addRules(rover::roverRules());
        RunnerReport report = runner.run();
        std::vector<size_t> per_rule;
        for (const RuleStats &rule : report.rules)
            per_rule.push_back(rule.matches);
        return std::make_tuple(report.total_applied,
                               report.iterations.size(), eg.numNodes(),
                               eg.numClasses(), per_rule);
    };

    auto naive = runOnce(true);
    auto indexed = runOnce(false);
    EXPECT_EQ(std::get<0>(naive), std::get<0>(indexed));
    EXPECT_EQ(std::get<1>(naive), std::get<1>(indexed));
    EXPECT_EQ(std::get<2>(naive), std::get<2>(indexed));
    EXPECT_EQ(std::get<3>(naive), std::get<3>(indexed));
    EXPECT_EQ(std::get<4>(naive), std::get<4>(indexed))
        << "per-rule match counts must not depend on the matcher";
}

/** The sharded matcher's building blocks: slicing an ematchCandidates()
 *  list into chunks of any size, matching each chunk independently, and
 *  concatenating (with prefix truncation) must reassemble the serial
 *  ematch() list exactly — this is the invariant the runner's parallel
 *  fold rests on. */
TEST(EMatchDifferentialTest, ChunkedCandidatesReassembleSerialMatchList)
{
    for (uint32_t seed = 20; seed < 24; ++seed) {
        RandomGraph g(seed);
        for (const PatternPtr &p : patternPool()) {
            auto candidates = ematchCandidates(g.eg, *p, 0, false);
            auto full = ematch(g.eg, *p);
            for (size_t chunk : {size_t(1), size_t(3), size_t(7),
                                 size_t(64)}) {
                for (size_t limit :
                     {size_t(0), size_t(1), size_t(5), full.size()}) {
                    std::vector<Match> glued;
                    for (size_t begin = 0; begin < candidates.size();
                         begin += chunk) {
                        size_t count = std::min(chunk, candidates.size() -
                                                           begin);
                        auto part =
                            ematchChunk(g.eg, *p,
                                        candidates.data() + begin, count,
                                        limit);
                        for (Match &m : part) {
                            if (limit != 0 && glued.size() >= limit)
                                break;
                            glued.push_back(std::move(m));
                        }
                    }
                    auto serial = ematch(g.eg, *p, limit);
                    expectSameMatchList(glued, serial, p->str().c_str());
                }
            }
        }
    }
}

/**
 * The tentpole determinism contract: a full runner sweep — static and
 * dynamic rules, backoff truncation, guarded crashing rules that force
 * mid-run checkpoint rollbacks and quarantine events, incremental match
 * caches invalidated by those rollbacks — must be bit-identical between
 * -j1 and any other job count. "Bit-identical" here means: the final
 * e-graph (node/class counts and every pattern's match list), the proof
 * records, and the entire stats JSON with only wall-clock timings and
 * the jobs field normalized out.
 */
TEST(RunnerDifferentialTest, JobCountSweepIsBitIdentical)
{
    struct Outcome
    {
        std::string report_json;
        size_t nodes = 0;
        size_t classes = 0;
        std::vector<std::string> records;
        std::vector<std::vector<Match>> matches;
    };

    auto normalized = [](RunnerReport report) {
        for (RuleStats &rule : report.rules) {
            rule.search_seconds = 0;
            rule.apply_seconds = 0;
        }
        for (IterationStats &it : report.iterations)
            it.seconds = 0;
        report.total_seconds = 0;
        report.match_phase.shard_seconds = 0;
        report.match_phase.search_wall_seconds = 0;
        report.match_phase.jobs = 0;
        return toJson(report).dump(2);
    };

    auto runOnce = [&](uint32_t seed, unsigned jobs) {
        // Few unions: heavy random merging congruence-collapses a small
        // op alphabet into near-degenerate graphs (single-digit class
        // counts), which can never split a shard.
        RandomGraph g(seed, 160, 5);
        // A wide fan of f-nodes over distinct leaves pushes one rule's
        // candidate list past several shard boundaries (the shard size
        // is 512), so the cross-shard concatenation and prefix
        // truncation genuinely run multi-shard.
        std::mt19937 rng(seed * 31 + 5);
        for (int i = 0; i < 600; ++i) {
            g.ids.push_back(g.eg.add(
                ENode{Symbol("leaf" + std::to_string(i)), {}}));
        }
        for (int i = 0; i < 1200; ++i) {
            ENode node{Symbol("f"),
                       {g.ids[rng() % g.ids.size()],
                        g.ids[rng() % g.ids.size()]}};
            g.ids.push_back(g.eg.add(node));
        }
        g.eg.rebuild();

        RunnerOptions options;
        options.max_iters = 5;
        options.match_limit = 7; // force truncation and bans
        options.ban_length = 1;
        options.record_proofs = true;
        options.catch_rule_errors = true;
        options.quarantine_after = 2;
        options.incremental_match = true;
        options.match_jobs = jobs;

        Runner runner(g.eg, options);
        runner.addRule(makeRewrite("comm", "(f ?x ?y)", "(f ?y ?x)"));
        runner.addRule(makeRewrite("widen", "(g ?x)", "(h ?x ?x)"));
        runner.addRule(makeRewrite("narrow", "(h ?x ?y)", "(g ?x)"));
        // Always throws: every application rolls its checkpoint back
        // (bumping the rollback generation, which invalidates every
        // incremental cache) and the circuit breaker quarantines it.
        runner.addRule(makeDynRewrite(
            "crash", "(k ?a ?b ?c)",
            [](EGraph &, const Match &) -> std::optional<TermPtr> {
                throw FatalError("injected search-sweep crash");
            }));
        // Throws on half its matches (keyed on the match root, which
        // the determinism contract makes identical across job counts),
        // so rollbacks interleave with successful dynamic unions.
        runner.addRule(makeDynRewrite(
            "flaky", "(g ?x)",
            [](EGraph &, const Match &m) -> std::optional<TermPtr> {
                if (m.root % 2 == 0)
                    throw FatalError("injected flaky crash");
                return parseTerm("flaky_leaf");
            }));
        RunnerReport report = runner.run();

        // The scenario must genuinely split rules across shards, or
        // the sweep degenerates to one-shard-per-rule and proves
        // nothing about cross-shard merging.
        EXPECT_GT(report.match_phase.shards,
                  report.match_phase.index_scans +
                      report.match_phase.full_scans)
            << "expected at least one multi-shard search";

        Outcome out;
        for (const RewriteRecord &record : report.records)
            out.records.push_back(record.rule);
        out.report_json = normalized(std::move(report));
        out.nodes = g.eg.numNodes();
        out.classes = g.eg.numClasses();
        for (const PatternPtr &p : patternPool())
            out.matches.push_back(ematch(g.eg, *p));
        EXPECT_EQ(g.eg.debugCheckInvariants(), "");
        return out;
    };

    for (uint32_t seed = 60; seed < 63; ++seed) {
        Outcome base = runOnce(seed, 1);
        for (unsigned jobs : {2u, 4u, 8u}) {
            Outcome other = runOnce(seed, jobs);
            EXPECT_EQ(other.report_json, base.report_json)
                << "stats JSON diverged at seed " << seed << " -j"
                << jobs;
            EXPECT_EQ(other.nodes, base.nodes) << "seed " << seed;
            EXPECT_EQ(other.classes, base.classes) << "seed " << seed;
            EXPECT_EQ(other.records, base.records)
                << "proof records diverged at seed " << seed;
            ASSERT_EQ(other.matches.size(), base.matches.size());
            for (size_t i = 0; i < base.matches.size(); ++i)
                expectSameMatchList(other.matches[i], base.matches[i],
                                    "final match lists");
        }
    }
}

/** A mid-run *external* rollback (a caller checkpoint spanning runner
 *  activity) must leave -j1 and -jN in identical states too: the sweep
 *  above covers per-application rollbacks, this covers the coarse
 *  phase-rollback pattern core/seer.cc uses. */
TEST(RunnerDifferentialTest, ExternalCheckpointRollbackIsJobInvariant)
{
    auto runOnce = [](unsigned jobs) {
        RandomGraph g(91, 140, 20);
        auto cp = g.eg.checkpoint();
        RunnerOptions options;
        options.max_iters = 3;
        options.match_limit = 16;
        options.record_proofs = false;
        options.match_jobs = jobs;
        Runner runner(g.eg, options);
        runner.addRule(makeRewrite("comm", "(f ?x ?y)", "(f ?y ?x)"));
        runner.addRule(makeRewrite("widen", "(g ?x)", "(h ?x ?x)"));
        runner.run();
        g.eg.rollback(cp);

        // Run again on the restored graph: caches and stamps must have
        // rewound identically regardless of the first run's job count.
        Runner again(g.eg, options);
        again.addRule(makeRewrite("comm", "(f ?x ?y)", "(f ?y ?x)"));
        again.addRule(makeRewrite("widen", "(g ?x)", "(h ?x ?x)"));
        RunnerReport report = again.run();
        EXPECT_EQ(g.eg.debugCheckInvariants(), "");
        return std::make_tuple(report.total_applied, g.eg.numNodes(),
                               g.eg.numClasses());
    };

    auto base = runOnce(1);
    EXPECT_EQ(runOnce(2), base);
    EXPECT_EQ(runOnce(8), base);
}

} // namespace
} // namespace seer::eg
