/**
 * Differential tests for incremental analysis-driven extraction: with a
 * registered cost-bound analysis, extractGreedy/extractExact must produce
 * results bit-identical (same term, same tree/dag cost doubles) to the
 * from-scratch reference path (ExtractOptions::naive) — on randomized
 * e-graphs, across random add/merge/rebuild schedules, checkpoint
 * rollbacks, runner iterations with quarantined rules, and external
 * model-input (registry) updates.
 */
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/cost.h"
#include "egraph/extract.h"
#include "egraph/runner.h"
#include "rover/rover.h"
#include "support/error.h"

namespace seer::eg {
namespace {

/** Deterministic cost over the random-graph op pool. */
class ToyCost : public CostModel
{
  public:
    double
    nodeCost(const ENode &node) const override
    {
        const std::string &op = node.op.str();
        if (op == "f")
            return 2.25;
        if (op == "g")
            return 1.5;
        if (op == "h")
            return 4;
        if (op == "k")
            return 0.75;
        if (op == "a")
            return 1;
        if (op == "b")
            return 2;
        if (op == "c")
            return 0.5;
        if (op == "d")
            return 3;
        return 0;
    }
    std::string name() const override { return "toy"; }
};

/** Cost model with mutable external inputs (a registry stand-in): leaf
 *  costs live in a keyed table with a touch log, like LoopRegistry. */
class TableCost : public CostModel
{
  public:
    TableCost()
    {
        table_ = {{"a", 1.0}, {"b", 2.0}, {"c", 0.5}, {"d", 3.0}};
    }

    double
    nodeCost(const ENode &node) const override
    {
        const std::string &op = node.op.str();
        auto it = table_.find(op);
        if (it != table_.end())
            return it->second;
        if (op == "f")
            return 2.25;
        if (op == "g")
            return 1.5;
        if (op == "k")
            return 0.75;
        return 0;
    }
    std::string name() const override { return "toy-table"; }
    uint64_t revision() const override { return touches_.size(); }
    std::vector<std::string>
    touchedSince(uint64_t since) const override
    {
        std::vector<std::string> out;
        for (size_t i = since; i < touches_.size(); ++i) {
            if (std::find(out.begin(), out.end(), touches_[i]) ==
                out.end())
                out.push_back(touches_[i]);
        }
        return out;
    }
    std::optional<std::string>
    dependencyKey(const ENode &node) const override
    {
        if (table_.count(node.op.str()))
            return node.op.str();
        return std::nullopt;
    }

    void
    set(const std::string &op, double cost)
    {
        table_[op] = cost;
        touches_.push_back(op);
    }

  private:
    std::map<std::string, double> table_;
    std::vector<std::string> touches_;
};

const ToyCost kToy;
const TermSizeCost kSize;

/** Incremental (registered analysis) vs from-scratch (naive) — the two
 *  paths must agree bitwise: same feasibility, same term, identical
 *  cost doubles. */
void
expectSameExtraction(const EGraph &eg, EClassId root,
                     const CostModel &cost, const char *what)
{
    ExtractStats inc_stats, naive_stats;
    ExtractOptions inc;
    inc.stats = &inc_stats;
    ExtractOptions naive;
    naive.naive = true;
    naive.stats = &naive_stats;
    auto a = extractGreedy(eg, root, cost, inc);
    auto b = extractGreedy(eg, root, cost, naive);
    ASSERT_EQ(a.has_value(), b.has_value()) << what;
    EXPECT_FALSE(naive_stats.used_analysis) << what;
    if (!a)
        return;
    EXPECT_EQ(a->term->str(), b->term->str()) << what;
    EXPECT_EQ(a->tree_cost, b->tree_cost) << what;
    EXPECT_EQ(a->dag_cost, b->dag_cost) << what;
}

const std::pair<const char *, size_t> kOps[] = {
    {"f", 2}, {"g", 1}, {"h", 2}, {"k", 3},
    {"a", 0}, {"b", 0}, {"c", 0}, {"d", 0},
};

std::vector<EClassId>
seedLeaves(EGraph &eg)
{
    std::vector<EClassId> ids;
    for (size_t i = 4; i < 8; ++i)
        ids.push_back(eg.add(ENode{Symbol(kOps[i].first), {}}));
    return ids;
}

void
mutate(EGraph &eg, std::vector<EClassId> &ids, std::mt19937 &rng,
       size_t steps)
{
    for (size_t i = 0; i < steps; ++i) {
        switch (rng() % 4) {
        case 0:
        case 1: {
            const auto &[op, arity] = kOps[rng() % 8];
            ENode node{Symbol(op), {}};
            for (size_t c = 0; c < arity; ++c)
                node.children.push_back(ids[rng() % ids.size()]);
            ids.push_back(eg.add(node));
            break;
        }
        case 2:
            eg.merge(ids[rng() % ids.size()], ids[rng() % ids.size()]);
            break;
        case 3:
            eg.rebuild();
            break;
        }
    }
    eg.rebuild();
}

/** >= 110 randomized schedules: interleaved adds/merges/rebuilds and
 *  extractions, with a checkpoint span (extraction inside it, then a
 *  rollback) in every schedule. */
TEST(ExtractDifferentialTest, IncrementalEqualsNaiveAcrossRandomSchedules)
{
    for (uint32_t seed = 1; seed <= 110; ++seed) {
        std::mt19937 rng(seed);
        EGraph eg;
        registerCostBound(eg, kToy);
        registerCostBound(eg, kSize);
        std::vector<EClassId> ids = seedLeaves(eg);
        mutate(eg, ids, rng, 40);
        for (int round = 0; round < 4; ++round) {
            expectSameExtraction(eg, ids[rng() % ids.size()], kToy,
                                 "toy");
            expectSameExtraction(eg, ids[rng() % ids.size()], kSize,
                                 "term-size");
            if (round == 1) {
                size_t mark = ids.size();
                EGraph::Checkpoint cp = eg.checkpoint();
                mutate(eg, ids, rng, 15);
                expectSameExtraction(eg, ids[rng() % ids.size()], kToy,
                                     "inside checkpoint");
                eg.rollback(cp);
                ids.resize(mark); // drop ids the rollback deleted
                expectSameExtraction(eg, ids[rng() % ids.size()], kToy,
                                     "after rollback");
                expectSameExtraction(eg, ids[rng() % ids.size()], kSize,
                                     "after rollback (size)");
            } else {
                mutate(eg, ids, rng, 10);
            }
        }
        // Runs each registered analysis's from-scratch coherence check.
        ASSERT_EQ(eg.debugCheckInvariants(), "") << "seed " << seed;
    }
}

/** Runner iterations with a quarantined (always-throwing) rule and a
 *  rolled-back phase: extraction stays bit-identical to naive, and the
 *  rollback restores the pre-checkpoint extraction exactly. */
TEST(ExtractDifferentialTest, RunnerQuarantineAndRollbackKeepBitIdentity)
{
    static const rover::RoverAreaCost kArea;
    EGraph eg(rover::roverAnalysisHooks());
    registerCostBound(eg, kArea);
    registerCostBound(eg, kSize);
    EClassId root = eg.addTerm(parseTerm(
        "(arith.addi:i32 (arith.muli:i32 var:x const:12:i32) "
        "(arith.addi:i32 (arith.muli:i32 var:y const:6:i32) "
        "(arith.muli:i32 var:x const:3:i32)))"));
    eg.rebuild();

    RunnerOptions options;
    options.max_iters = 4;
    options.max_nodes = 20000;
    options.record_proofs = false;
    options.catch_rule_errors = true;
    options.quarantine_after = 2;

    {
        Runner runner(eg, options);
        runner.addRules(rover::roverRules());
        runner.addRule(makeDynRewrite(
            "always-throws", "?x",
            [](EGraph &, const Match &) -> std::optional<TermPtr> {
                fatal("injected failure");
                return std::nullopt;
            }));
        RunnerReport report = runner.run();
        bool quarantined = false;
        for (const RuleStats &rule : report.rules)
            quarantined |= rule.quarantined;
        EXPECT_TRUE(quarantined);
    }
    expectSameExtraction(eg, root, kArea, "after quarantine run");
    expectSameExtraction(eg, root, kSize, "after quarantine run (size)");

    auto before = extractGreedy(eg, root, kArea);
    ASSERT_TRUE(before.has_value());
    EGraph::Checkpoint cp = eg.checkpoint();
    {
        Runner runner(eg, options);
        runner.addRules(rover::roverRules());
        runner.run();
    }
    expectSameExtraction(eg, root, kArea, "inside phase checkpoint");
    eg.rollback(cp);
    expectSameExtraction(eg, root, kArea, "after phase rollback");
    auto after = extractGreedy(eg, root, kArea);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(before->term->str(), after->term->str());
    EXPECT_EQ(before->tree_cost, after->tree_cost);
    EXPECT_EQ(before->dag_cost, after->dag_cost);
    ASSERT_EQ(eg.debugCheckInvariants(), "");
}

/** Exact extraction: the analysis-backed arm (with the stronger
 *  inevitable-children bound) returns the same optimum as the naive
 *  weak-bound arm whenever neither exhausts its budget, with no more
 *  search expansions; and exact never beats greedy's dag cost. */
TEST(ExtractDifferentialTest, ExactIncrementalEqualsNaive)
{
    for (uint32_t seed = 1; seed <= 25; ++seed) {
        std::mt19937 rng(seed);
        EGraph eg;
        registerCostBound(eg, kToy);
        std::vector<EClassId> ids = seedLeaves(eg);
        mutate(eg, ids, rng, 20);
        EClassId root = ids[rng() % ids.size()];

        ExtractStats inc_stats, naive_stats;
        ExtractOptions inc;
        inc.stats = &inc_stats;
        ExtractOptions naive;
        naive.naive = true;
        naive.stats = &naive_stats;
        auto a = extractExact(eg, root, kToy, inc);
        auto b = extractExact(eg, root, kToy, naive);
        ASSERT_EQ(a.has_value(), b.has_value()) << "seed " << seed;
        if (!a)
            continue;
        ASSERT_FALSE(inc_stats.budget_exhausted);
        ASSERT_FALSE(naive_stats.budget_exhausted);
        EXPECT_EQ(a->term->str(), b->term->str()) << "seed " << seed;
        EXPECT_EQ(a->dag_cost, b->dag_cost) << "seed " << seed;
        // The closure bound dominates the weak bound: it can only cut
        // the search tree, never grow it.
        EXPECT_LE(inc_stats.expansions, naive_stats.expansions)
            << "seed " << seed;

        auto greedy = extractGreedy(eg, root, kToy);
        ASSERT_TRUE(greedy.has_value());
        EXPECT_LE(a->dag_cost, greedy->dag_cost + 1e-9)
            << "seed " << seed;
    }
}

/** Budget exhaustion is reported, not silent, and the result is still a
 *  valid (at worst greedy) implementation. */
TEST(ExtractDifferentialTest, BudgetExhaustionReported)
{
    EGraph eg;
    registerCostBound(eg, kToy);
    std::vector<EClassId> ids = seedLeaves(eg);
    // A deep chain with two nodes per class whose child sets differ:
    // the non-shared children keep the admissible bound strictly below
    // the optimum, so the search must descend one class per link and a
    // budget of 1 is guaranteed to run out.
    EClassId root = ids[0];
    for (int i = 0; i < 12; ++i) {
        EClassId next = eg.add(ENode{Symbol("f"), {root, ids[1]}});
        eg.merge(next, eg.add(ENode{Symbol("h"), {root, ids[3]}}));
        eg.rebuild();
        root = eg.find(next);
    }

    auto greedy = extractGreedy(eg, root, kToy);
    ASSERT_TRUE(greedy.has_value());

    ExtractStats stats;
    ExtractOptions options;
    options.budget = 1;
    options.stats = &stats;
    auto exact = extractExact(eg, root, kToy, options);
    ASSERT_TRUE(exact.has_value());
    EXPECT_TRUE(stats.budget_exhausted);
    EXPECT_LE(exact->dag_cost, greedy->dag_cost + 1e-9);
}

/** External model-input updates invalidate only the dependent cones:
 *  after touching one leaf's table entry, the re-drain recomputes a
 *  strict subset of the classes and still matches the naive path. */
TEST(CostBoundAnalysisTest, ModelTouchInvalidatesOnlyDependentCones)
{
    TableCost table;
    EGraph eg;
    CostBoundAnalysis &bound = registerCostBound(eg, table);

    EClassId a = eg.add(ENode{Symbol("a"), {}});
    EClassId b = eg.add(ENode{Symbol("b"), {}});
    EClassId c = eg.add(ENode{Symbol("c"), {}});
    EClassId d = eg.add(ENode{Symbol("d"), {}});
    EClassId t1 = eg.add(ENode{Symbol("f"), {a, b}});
    EClassId t2 = eg.add(ENode{Symbol("g"), {c}});
    EClassId root = eg.add(ENode{Symbol("k"), {t1, t2, d}});
    // An independent cone that never reads "a".
    EClassId u1 = eg.add(ENode{Symbol("f"), {c, c}});
    eg.add(ENode{Symbol("g"), {u1}});
    eg.rebuild();

    auto base = extractGreedy(eg, root, table);
    ASSERT_TRUE(base.has_value());
    uint64_t before = bound.recomputes();

    table.set("a", 10.0);
    auto again = extractGreedy(eg, root, table);
    ASSERT_TRUE(again.has_value());
    uint64_t delta = bound.recomputes() - before;
    EXPECT_GE(delta, 1u);
    EXPECT_LT(delta, eg.numClasses())
        << "invalidation must be targeted, not a global recompute";
    EXPECT_EQ(bound.value(eg.find(a)).cost, 10.0);

    ExtractOptions naive;
    naive.naive = true;
    auto reference = extractGreedy(eg, root, table, naive);
    ASSERT_TRUE(reference.has_value());
    EXPECT_EQ(again->term->str(), reference->term->str());
    EXPECT_EQ(again->tree_cost, reference->tree_cost);
    EXPECT_EQ(again->dag_cost, reference->dag_cost);
    ASSERT_EQ(eg.debugCheckInvariants(), "");
}

/** The loop registry's touch log: operator[] ticks the revision and
 *  records the key (deduplicated by touchedSince); LatencyCost forwards
 *  both to the extraction layer. */
TEST(LoopRegistryTest, TouchLogDrivesLatencyInvalidation)
{
    core::LoopRegistry registry;
    EXPECT_EQ(registry.revision(), 0u);
    registry["L1"].constraints.latency = 3;
    registry["L2"].constraints.latency = 5;
    EXPECT_EQ(registry.revision(), 2u);
    EXPECT_EQ(registry.touchedSince(0),
              (std::vector<std::string>{"L1", "L2"}));
    registry["L1"].constraints.latency = 4;
    EXPECT_EQ(registry.touchedSince(2),
              std::vector<std::string>{"L1"});
    registry["L1"].constraints.latency = 6;
    EXPECT_EQ(registry.touchedSince(2),
              std::vector<std::string>{"L1"})
        << "touchedSince must deduplicate repeated touches";
    EXPECT_EQ(registry.count("L1"), 1u);
    EXPECT_EQ(registry.at("L1").constraints.latency, 6);
    EXPECT_EQ(registry.size(), 2u);

    core::LatencyCost cost(registry);
    EXPECT_EQ(cost.name(), "latency");
    EXPECT_EQ(cost.revision(), registry.revision());
    registry["L3"];
    EXPECT_EQ(cost.touchedSince(4), std::vector<std::string>{"L3"});
}

} // namespace
} // namespace seer::eg
