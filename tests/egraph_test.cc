/** Core e-graph tests: hashconsing, union, rebuild/congruence, analysis. */
#include <gtest/gtest.h>

#include "egraph/egraph.h"
#include "egraph/term.h"

namespace seer::eg {
namespace {

ENode
node(std::string_view op, ChildList children = {})
{
    return ENode{Symbol(op), std::move(children)};
}

TEST(TermTest, ParsePrintRoundTrip)
{
    const char *text = "(add (mul var:a const:2) var:b)";
    TermPtr term = parseTerm(text);
    EXPECT_EQ(term->str(), text);
    EXPECT_EQ(term->op().str(), "add");
    EXPECT_EQ(term->arity(), 2u);
    EXPECT_EQ(term->size(), 5u);
}

TEST(TermTest, LeafParses)
{
    TermPtr leaf = parseTerm("var:x");
    EXPECT_TRUE(leaf->isLeaf());
    EXPECT_EQ(leaf->str(), "var:x");
}

TEST(TermTest, EqualsIsStructural)
{
    EXPECT_TRUE(parseTerm("(f a b)")->equals(*parseTerm("(f a b)")));
    EXPECT_FALSE(parseTerm("(f a b)")->equals(*parseTerm("(f b a)")));
    EXPECT_FALSE(parseTerm("(f a)")->equals(*parseTerm("(f a a)")));
}

TEST(TermTest, SymbolFieldHelpers)
{
    auto fields = splitSymbol(Symbol("const:42:i32"));
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "const");
    EXPECT_EQ(fields[1], "42");
    EXPECT_EQ(fields[2], "i32");
    EXPECT_EQ(joinSymbol({"a", "b"}).str(), "a:b");
}

TEST(EGraphTest, HashconsingDeduplicates)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    EClassId f1 = eg.add(node("f", {a, b}));
    EClassId f2 = eg.add(node("f", {a, b}));
    EXPECT_EQ(f1, f2);
    EXPECT_EQ(eg.numClasses(), 3u);
    EXPECT_EQ(eg.numNodes(), 3u);
}

TEST(EGraphTest, AddTermSharesSubterms)
{
    EGraph eg;
    // (mul (add x y) (add x y)) shares the add.
    eg.addTerm(parseTerm("(mul (add x y) (add x y))"));
    EXPECT_EQ(eg.numClasses(), 4u); // x, y, add, mul
}

TEST(EGraphTest, MergeUnionsClasses)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    EXPECT_TRUE(eg.merge(a, b));
    EXPECT_FALSE(eg.merge(a, b));
    EXPECT_EQ(eg.find(a), eg.find(b));
    EXPECT_EQ(eg.eclass(a).nodes.size(), 2u);
}

TEST(EGraphTest, CongruenceClosure)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    EClassId fa = eg.add(node("f", {a}));
    EClassId fb = eg.add(node("f", {b}));
    EXPECT_NE(eg.find(fa), eg.find(fb));
    eg.merge(a, b);
    eg.rebuild();
    EXPECT_EQ(eg.find(fa), eg.find(fb)); // f(a) == f(b) by congruence
}

TEST(EGraphTest, CongruencePropagatesUpward)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    EClassId fa = eg.add(node("f", {a}));
    EClassId fb = eg.add(node("f", {b}));
    EClassId gfa = eg.add(node("g", {fa}));
    EClassId gfb = eg.add(node("g", {fb}));
    eg.merge(a, b);
    eg.rebuild();
    EXPECT_EQ(eg.find(gfa), eg.find(gfb));
}

TEST(EGraphTest, LookupAfterMerge)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    eg.add(node("f", {a}));
    eg.merge(a, b);
    eg.rebuild();
    auto found = eg.lookup(node("f", {b}));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, *eg.lookup(node("f", {a})));
}

TEST(EGraphTest, LookupTermMissing)
{
    EGraph eg;
    eg.addTerm(parseTerm("(f a)"));
    EXPECT_TRUE(eg.lookupTerm(parseTerm("(f a)")).has_value());
    EXPECT_FALSE(eg.lookupTerm(parseTerm("(f b)")).has_value());
    EXPECT_FALSE(eg.lookupTerm(parseTerm("(g a)")).has_value());
}

AnalysisHooks
arithmeticHooks()
{
    AnalysisHooks hooks;
    hooks.parse_const = [](Symbol op) -> std::optional<int64_t> {
        auto fields = splitSymbol(op);
        if (fields.size() == 2 && fields[0] == "const")
            return std::stoll(fields[1]);
        return std::nullopt;
    };
    hooks.fold = [](Symbol op, const std::vector<int64_t> &args)
        -> std::optional<Symbol> {
        if (op.str() == "add" && args.size() == 2)
            return Symbol("const:" + std::to_string(args[0] + args[1]));
        if (op.str() == "mul" && args.size() == 2)
            return Symbol("const:" + std::to_string(args[0] * args[1]));
        return std::nullopt;
    };
    return hooks;
}

TEST(EGraphAnalysisTest, ConstantLeavesParsed)
{
    EGraph eg(arithmeticHooks());
    EClassId c = eg.addTerm(parseTerm("const:42"));
    EXPECT_EQ(eg.constantOf(c), 42);
}

TEST(EGraphAnalysisTest, ConstantFoldingAddsLiteral)
{
    EGraph eg(arithmeticHooks());
    EClassId sum = eg.addTerm(parseTerm("(add const:20 const:22)"));
    eg.rebuild();
    EXPECT_EQ(eg.constantOf(sum), 42);
    // The folded literal node must be present in the class.
    EXPECT_EQ(eg.find(*eg.lookupTerm(parseTerm("const:42"))),
              eg.find(sum));
}

TEST(EGraphAnalysisTest, FoldingPropagatesThroughUnions)
{
    EGraph eg(arithmeticHooks());
    EClassId x = eg.addTerm(parseTerm("var:x"));
    EClassId expr = eg.addTerm(parseTerm("(mul var:x const:3)"));
    EXPECT_FALSE(eg.constantOf(expr).has_value());
    // Learn x == 5.
    EClassId five = eg.addTerm(parseTerm("const:5"));
    eg.merge(x, five);
    eg.rebuild();
    EXPECT_EQ(eg.constantOf(expr), 15);
}

TEST(EGraphAnalysisTest, MergePrefersDefinedConstant)
{
    EGraph eg(arithmeticHooks());
    EClassId v = eg.addTerm(parseTerm("var:v"));
    EClassId c = eg.addTerm(parseTerm("const:7"));
    eg.merge(v, c);
    eg.rebuild();
    EXPECT_EQ(eg.constantOf(v), 7);
}

TEST(EGraphTest, ClassIdsAreCanonical)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    eg.add(node("f", {a, b}));
    eg.merge(a, b);
    eg.rebuild();
    for (EClassId id : eg.classIds())
        EXPECT_EQ(eg.find(id), id);
    EXPECT_EQ(eg.numClasses(), 2u);
}

TEST(EGraphTest, SelfReferentialClassSurvivesRebuild)
{
    // x = f(x) is representable (cycles are fine in e-graphs).
    EGraph eg;
    EClassId x = eg.add(node("x"));
    EClassId fx = eg.add(node("f", {x}));
    eg.merge(x, fx);
    eg.rebuild();
    EXPECT_EQ(eg.find(x), eg.find(fx));
    EXPECT_EQ(eg.numClasses(), 1u);
}

} // namespace
} // namespace seer::eg
