/** End-to-end SEER tests: optimization quality + translation validity. */
#include <gtest/gtest.h>

#include "core/seer.h"
#include "core/verify.h"
#include "hls/hls.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace seer::core {
namespace {

using namespace ir;

size_t
countLoops(const Module &m)
{
    size_t n = 0;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            ++n;
    });
    return n;
}

/** Evaluate a module's PPA: SEER designs are pipelined, baselines not. */
hls::HlsReport
evalModule(const Module &m, bool pipeline)
{
    Operation *func = m.firstFunc();
    Block &body = func->region(0).block();
    std::vector<std::unique_ptr<Buffer>> buffers;
    std::vector<RtValue> args;
    for (size_t i = 0; i < body.numArgs(); ++i) {
        buffers.push_back(std::make_unique<Buffer>(body.arg(i).type()));
        args.push_back(buffers.back().get());
    }
    hls::HlsOptions options;
    options.schedule.pipeline_loops = pipeline;
    return hls::evaluate(m, func->strAttr("sym_name"), std::move(args),
                         options);
}

const char *kSeqLoops = R"(
func.func @seq_loops(%a: memref<64xi32>, %b: memref<64xi32>,
                     %c: memref<64xi32>) {
  affine.for %i = 0 to 32 {
    %v = memref.load %a[%i] : memref<64xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%i] : memref<64xi32>
  }
  affine.for %j = 0 to 32 {
    %v = memref.load %b[%j] : memref<64xi32>
    %c2 = arith.constant 2 : i32
    %w = arith.muli %v, %c2 : i32
    memref.store %w, %c[%j] : memref<64xi32>
  }
})";

TEST(SeerTest, FusesSequentialLoops)
{
    Module input = parseModule(kSeqLoops);
    SeerResult result = optimize(input, "seq_loops");
    EXPECT_EQ(countLoops(result.module), 1u) << toString(result.module);
    std::string diag;
    EXPECT_TRUE(checkModuleEquivalence(input, result.module, "seq_loops",
                                       {}, &diag))
        << diag << "\n" << toString(result.module);
}

TEST(SeerTest, OptimizedDesignBeatsBaseline)
{
    Module input = parseModule(kSeqLoops);
    SeerResult result = optimize(input, "seq_loops");
    hls::HlsReport baseline = evalModule(input, /*pipeline=*/false);
    hls::HlsReport optimized =
        evalModule(result.module, /*pipeline=*/true);
    EXPECT_LT(optimized.total_cycles, baseline.total_cycles / 2);
}

TEST(SeerTest, Figure9AffineRecoveryUnlocksFusion)
{
    // Both loops use the non-affine (i<<1)+i index; fusion only becomes
    // possible after ROVER rewrites discover 3*i, which requires the
    // control and datapath rule sets to interleave (Section 4.5).
    const char *text = R"(
func.func @fig9(%a: memref<64xi32>, %b: memref<64xi32>,
                %c: memref<64xi32>) {
  %one = arith.constant 1 : index
  affine.for %i = 0 to 20 {
    %sh = arith.shli %i, %one : index
    %idx = arith.addi %sh, %i : index
    %v = memref.load %a[%idx] : memref<64xi32>
    memref.store %v, %b[%idx] : memref<64xi32>
  }
  affine.for %j = 0 to 20 {
    %sh = arith.shli %j, %one : index
    %idx = arith.addi %sh, %j : index
    %v = memref.load %b[%idx] : memref<64xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %c[%idx] : memref<64xi32>
  }
})";
    Module input = parseModule(text);

    // Full SEER fuses.
    SeerResult full = optimize(input, "fig9");
    EXPECT_EQ(countLoops(full.module), 1u) << toString(full.module);

    // Control-only (SEER (C)) cannot: the analyzer refuses shifts.
    SeerOptions control_only;
    control_only.use_rover = false;
    SeerResult seer_c = optimize(input, "fig9", control_only);
    EXPECT_EQ(countLoops(seer_c.module), 2u);

    // Equivalence must hold regardless.
    std::string diag;
    EXPECT_TRUE(
        checkModuleEquivalence(input, full.module, "fig9", {}, &diag))
        << diag;
}

TEST(SeerTest, RoverOnlyLeavesControlPathUntouched)
{
    Module input = parseModule(kSeqLoops);
    SeerOptions rover_only;
    rover_only.use_control = false;
    SeerResult result = optimize(input, "seq_loops", rover_only);
    EXPECT_EQ(countLoops(result.module), 2u);
    std::string diag;
    EXPECT_TRUE(checkModuleEquivalence(input, result.module, "seq_loops",
                                       {}, &diag))
        << diag;
}

TEST(SeerTest, DatapathStrengthReductionInFinalProgram)
{
    // x * 12 should leave as shift-add/shift network, not a multiplier.
    const char *text = R"(
func.func @sr(%a: memref<32xi32>) {
  %c12 = arith.constant 12 : i32
  affine.for %i = 0 to 32 {
    %v = memref.load %a[%i] : memref<32xi32>
    %w = arith.muli %v, %c12 : i32
    memref.store %w, %a[%i] : memref<32xi32>
  }
})";
    Module input = parseModule(text);
    SeerResult result = optimize(input, "sr");
    double base_area = hls::estimateArea(input, "sr");
    double seer_area = hls::estimateArea(result.module, "sr");
    EXPECT_LT(seer_area, base_area) << toString(result.module);
    std::string diag;
    EXPECT_TRUE(
        checkModuleEquivalence(input, result.module, "sr", {}, &diag))
        << diag << toString(result.module);
}

TEST(SeerTest, UnrollPlusForwardingCollapsesScalarLoop)
{
    // The byte_enable pattern with unrolling enabled (case-study mode).
    const char *text = R"(
func.func @be(%flags: memref<8xi32>, %state: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 8 {
    %s = memref.load %state[%z] : memref<1xi32>
    %f = memref.load %flags[%i] : memref<8xi32>
    %n = arith.ori %s, %f : i32
    memref.store %n, %state[%z] : memref<1xi32>
  }
})";
    Module input = parseModule(text);
    SeerOptions options;
    options.unroll_max_trip = 16;
    SeerResult result = optimize(input, "be", options);
    std::string diag;
    EXPECT_TRUE(
        checkModuleEquivalence(input, result.module, "be", {}, &diag))
        << diag << toString(result.module);

    // Functional win: fewer cycles than the recurrence-bound baseline.
    hls::HlsReport baseline = evalModule(input, false);
    hls::HlsReport optimized = evalModule(result.module, true);
    EXPECT_LT(optimized.total_cycles, baseline.total_cycles);
}

TEST(SeerTest, StatsArePopulated)
{
    Module input = parseModule(kSeqLoops);
    SeerResult result = optimize(input, "seq_loops");
    EXPECT_GT(result.stats.egraph_nodes, 10u);
    EXPECT_GT(result.stats.egraph_classes, 5u);
    EXPECT_GT(result.stats.unions_applied, 0u);
    EXPECT_GT(result.stats.total_seconds, 0.0);
    EXPECT_GE(result.stats.time_in_passes_seconds, 0.0);
    EXPECT_FALSE(result.stats.records.empty());
    // The indexed matcher drives every phase: the aggregated
    // match-phase counters must show index-pruned scans.
    EXPECT_GT(result.stats.match_phase.index_scans, 0u);
    EXPECT_GT(result.stats.match_phase.candidates_visited, 0u);
    std::string text = toJson(result.stats).dump();
    EXPECT_NE(text.find("\"match_phase\""), std::string::npos);
    EXPECT_NE(text.find("\"index_hit_rate\""), std::string::npos);
    EXPECT_NE(result.original_term, nullptr);
    EXPECT_NE(result.extracted_term, nullptr);
}

TEST(SeerTest, RegistryCoversExtractedLoops)
{
    Module input = parseModule(kSeqLoops);
    SeerResult result = optimize(input, "seq_loops");
    walk(result.module, [&](Operation &op) {
        if (!isa(op, opnames::kAffineFor))
            return;
        ASSERT_TRUE(op.hasAttr("seer.loop_id"));
        EXPECT_TRUE(
            result.registry.count(op.strAttr("seer.loop_id")));
    });
}

TEST(SeerVerifyTest, AllRecordsValidate)
{
    Module input = parseModule(kSeqLoops);
    SeerResult result = optimize(input, "seq_loops");
    VerifyOptions options;
    options.runs = 3;
    VerifyReport report = verifyRecords(result.stats.records, options);
    EXPECT_TRUE(report.ok())
        << (report.failures.empty() ? std::string()
                                    : report.failures[0]);
    EXPECT_GT(report.total_checks, 0u);
}

TEST(SeerVerifyTest, TermEquivalenceCatchesBadRewrite)
{
    // A deliberately wrong "rewrite": x + y vs x - y.
    auto lhs = eg::parseTerm("(arith.addi:i32 arg:x:i32 arg:y:i32)");
    auto rhs = eg::parseTerm("(arith.subi:i32 arg:x:i32 arg:y:i32)");
    std::string diag;
    EXPECT_FALSE(checkTermEquivalence(lhs, rhs, {}, &diag));
    EXPECT_NE(diag.find("counterexample"), std::string::npos);
}

TEST(SeerVerifyTest, TermEquivalenceAcceptsTrueRewrite)
{
    auto lhs = eg::parseTerm(
        "(arith.muli:i32 arg:x:i32 const:3:i32)");
    auto rhs = eg::parseTerm(
        "(arith.addi:i32 (arith.shli:i32 arg:x:i32 const:1:i32) "
        "arg:x:i32)");
    EXPECT_TRUE(checkTermEquivalence(lhs, rhs));
}

TEST(SeerVerifyTest, StatementTermEquivalence)
{
    auto lhs = eg::parseTerm(
        "(memref.store:t90001 const:5:i32 arg:m:memref<4xi32> "
        "const:1:index)");
    auto rhs = eg::parseTerm(
        "(memref.store:t90002 const:5:i32 arg:m:memref<4xi32> "
        "const:1:index)");
    EXPECT_TRUE(checkTermEquivalence(lhs, rhs));
    auto bad = eg::parseTerm(
        "(memref.store:t90003 const:6:i32 arg:m:memref<4xi32> "
        "const:1:index)");
    EXPECT_FALSE(checkTermEquivalence(lhs, bad));
}

TEST(SeerVerifyTest, ModuleEquivalenceDetectsDivergence)
{
    Module a = parseModule(R"(
func.func @f(%m: memref<4xi32>) {
  %z = arith.constant 0 : index
  %c = arith.constant 1 : i32
  memref.store %c, %m[%z] : memref<4xi32>
})");
    Module b = parseModule(R"(
func.func @f(%m: memref<4xi32>) {
  %z = arith.constant 0 : index
  %c = arith.constant 2 : i32
  memref.store %c, %m[%z] : memref<4xi32>
})");
    std::string diag;
    EXPECT_FALSE(checkModuleEquivalence(a, b, "f", {}, &diag));
    EXPECT_FALSE(diag.empty());
}

TEST(SeerTest, ValueYieldingIfIsPreNormalized)
{
    const char *text = R"(
func.func @vi(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %zero = arith.constant 0 : i32
    %c = arith.cmpi slt, %v, %zero : i32
    %r = scf.if %c -> (i32) {
      %n = arith.subi %zero, %v : i32
      scf.yield %n : i32
    } else {
      scf.yield %v : i32
    }
    memref.store %r, %a[%i] : memref<8xi32>
  }
})";
    Module input = parseModule(text);
    SeerResult result = optimize(input, "vi");
    std::string diag;
    EXPECT_TRUE(
        checkModuleEquivalence(input, result.module, "vi", {}, &diag))
        << diag << toString(result.module);
}

} // namespace
} // namespace seer::core
