/**
 * Checkpoint/rollback tests: the journal must restore the exact
 * pre-checkpoint e-graph across adds, merges, rebuilds and analysis
 * updates, and the invariant self-check must pass after every rollback.
 */
#include <gtest/gtest.h>

#include "egraph/egraph.h"
#include "egraph/term.h"

namespace seer::eg {
namespace {

ENode
node(std::string_view op, ChildList children = {})
{
    return ENode{Symbol(op), std::move(children)};
}

/** Structural fingerprint used to compare e-graph states. */
struct Fingerprint
{
    size_t classes;
    size_t nodes;
    std::vector<EClassId> ids;

    bool operator==(const Fingerprint &other) const
    {
        return classes == other.classes && nodes == other.nodes &&
               ids == other.ids;
    }
};

Fingerprint
fingerprint(const EGraph &eg)
{
    Fingerprint fp;
    fp.classes = eg.numClasses();
    fp.nodes = eg.numNodes();
    fp.ids = eg.classIds();
    return fp;
}

TEST(CheckpointTest, RollbackUndoesAdds)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    eg.add(node("f", {a, b}));
    eg.rebuild();
    Fingerprint before = fingerprint(eg);

    EGraph::Checkpoint cp = eg.checkpoint();
    EXPECT_EQ(eg.numOpenCheckpoints(), 1u);
    eg.add(node("g", {a}));
    eg.add(node("h", {b}));
    eg.rebuild();
    EXPECT_EQ(eg.numNodes(), 5u);
    eg.rollback(cp);

    EXPECT_EQ(eg.numOpenCheckpoints(), 0u);
    EXPECT_TRUE(fingerprint(eg) == before);
    EXPECT_EQ(eg.debugCheckInvariants(), "");
    // Hashcons restored: re-adding dedups to the original ids.
    EXPECT_EQ(eg.add(node("a")), a);
    EXPECT_EQ(eg.add(node("f", {a, b})), eg.add(node("f", {a, b})));
}

TEST(CheckpointTest, RollbackUndoesMergeAndCongruence)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    EClassId fa = eg.add(node("f", {a}));
    EClassId fb = eg.add(node("f", {b}));
    eg.rebuild();
    ASSERT_NE(eg.find(fa), eg.find(fb));
    Fingerprint before = fingerprint(eg);

    EGraph::Checkpoint cp = eg.checkpoint();
    eg.merge(a, b, "test");
    eg.rebuild();
    // Congruence closed: f(a) == f(b) now.
    ASSERT_EQ(eg.find(fa), eg.find(fb));
    eg.rollback(cp);

    EXPECT_TRUE(fingerprint(eg) == before);
    EXPECT_NE(eg.find(a), eg.find(b));
    EXPECT_NE(eg.find(fa), eg.find(fb));
    EXPECT_EQ(eg.debugCheckInvariants(), "");
    // The lookup index must have been restored too.
    EXPECT_EQ(eg.lookup(node("f", {a})), fa);
    EXPECT_EQ(eg.lookup(node("f", {b})), fb);
}

TEST(CheckpointTest, CommitKeepsChanges)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    eg.rebuild();

    EGraph::Checkpoint cp = eg.checkpoint();
    eg.merge(a, b, "test");
    eg.rebuild();
    eg.commit(cp);

    EXPECT_EQ(eg.numOpenCheckpoints(), 0u);
    EXPECT_EQ(eg.find(a), eg.find(b));
    EXPECT_EQ(eg.debugCheckInvariants(), "");
}

TEST(CheckpointTest, NestedCheckpointsAreLifo)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    eg.rebuild();

    EGraph::Checkpoint outer = eg.checkpoint();
    EClassId b = eg.add(node("b"));
    EGraph::Checkpoint inner = eg.checkpoint();
    eg.merge(a, b, "inner");
    eg.rebuild();
    ASSERT_EQ(eg.find(a), eg.find(b));

    eg.rollback(inner); // undoes the merge only
    EXPECT_NE(eg.find(a), eg.find(b));
    EXPECT_EQ(eg.numClasses(), 2u);

    eg.rollback(outer); // undoes the add of b too
    EXPECT_EQ(eg.numClasses(), 1u);
    EXPECT_EQ(eg.debugCheckInvariants(), "");
}

AnalysisHooks
constHooks()
{
    AnalysisHooks hooks;
    hooks.parse_const = [](Symbol op) -> std::optional<int64_t> {
        auto fields = splitSymbol(op);
        if (fields.size() == 2 && fields[0] == "const")
            return std::stoll(fields[1]);
        return std::nullopt;
    };
    return hooks;
}

TEST(CheckpointTest, RollbackRestoresConstantAnalysis)
{
    EGraph eg(constHooks());
    EClassId two = eg.addTerm(parseTerm("const:2"));
    EClassId x = eg.addTerm(parseTerm("var:x"));
    eg.rebuild();
    ASSERT_EQ(eg.constantOf(eg.find(two)), std::optional<int64_t>(2));
    ASSERT_FALSE(eg.constantOf(eg.find(x)).has_value());

    EGraph::Checkpoint cp = eg.checkpoint();
    // x learns the constant 2 through a union.
    eg.merge(x, two, "assume x = 2");
    eg.rebuild();
    ASSERT_EQ(eg.constantOf(eg.find(x)), std::optional<int64_t>(2));
    eg.rollback(cp);

    EXPECT_FALSE(eg.constantOf(eg.find(x)).has_value());
    EXPECT_EQ(eg.constantOf(eg.find(two)), std::optional<int64_t>(2));
    EXPECT_EQ(eg.debugCheckInvariants(), "");
}

TEST(CheckpointTest, RollbackTruncatesProofs)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    EClassId c = eg.add(node("c"));
    eg.merge(a, b, "before-cp");
    eg.rebuild();
    ASSERT_TRUE(eg.explain(a, b).has_value());

    EGraph::Checkpoint cp = eg.checkpoint();
    eg.merge(a, c, "after-cp");
    eg.rebuild();
    ASSERT_TRUE(eg.explain(a, c).has_value());
    eg.rollback(cp);

    // Pre-checkpoint justification survives; the new one is gone.
    EXPECT_TRUE(eg.explain(a, b).has_value());
    EXPECT_FALSE(eg.explain(a, c).has_value());
    EXPECT_EQ(eg.debugCheckInvariants(), "");
}

TEST(CheckpointTest, RepeatedCheckpointRollbackCyclesAreStable)
{
    EGraph eg;
    EClassId a = eg.add(node("a"));
    EClassId b = eg.add(node("b"));
    eg.add(node("f", {a, b}));
    eg.rebuild();
    Fingerprint before = fingerprint(eg);

    for (int round = 0; round < 5; ++round) {
        EGraph::Checkpoint cp = eg.checkpoint();
        EClassId g = eg.add(node("g", {a}));
        eg.merge(g, b, "round");
        eg.rebuild();
        eg.rollback(cp);
        ASSERT_TRUE(fingerprint(eg) == before) << "round " << round;
        ASSERT_EQ(eg.debugCheckInvariants(), "") << "round " << round;
    }
}

} // namespace
} // namespace seer::eg
