/**
 * Tests for the memoized + parallel external-pass evaluation layer
 * (PR 4): alpha-canonical cache keys, the two-level cache with on-disk
 * persistence, the deterministic name scope, cooperative deadline
 * cancellation, and the determinism contract of the worker pool —
 * `-j 1` == `-j N` and cache-on == cache-off, bit for bit.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/pass_eval.h"
#include "core/seer.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "seerlang/canonical.h"
#include "seerlang/encoding.h"
#include "support/worker_pool.h"

namespace seer::core {
namespace {

// ---------------------------------------------------------------------
// Cache key canonicalization
// ---------------------------------------------------------------------

TEST(CanonicalHashTest, AlphaEquivalentLoopsHitTheSameKey)
{
    // Same loop up to the induction variable name and the loop id —
    // both are rebound by back-translation, so they must share a key.
    auto a = eg::parseTerm("(affine.for:i:L0 const:0:index const:8:index"
                           " const:1:index (use var:i))");
    auto b = eg::parseTerm("(affine.for:j:L7 const:0:index const:8:index"
                           " const:1:index (use var:j))");
    EXPECT_EQ(sl::canonicalTermHash(a), sl::canonicalTermHash(b));
    EXPECT_TRUE(sl::alphaEquivalent(a, b));
}

TEST(CanonicalHashTest, DifferingAttributesMiss)
{
    auto base = eg::parseTerm("(affine.for:i:L0 const:0:index"
                              " const:8:index const:1:index"
                              " (use var:i))");
    // A different trip count is a different snippet.
    auto other_ub = eg::parseTerm("(affine.for:i:L0 const:0:index"
                                  " const:9:index const:1:index"
                                  " (use var:i))");
    EXPECT_NE(sl::canonicalTermHash(base),
              sl::canonicalTermHash(other_ub));
    EXPECT_FALSE(sl::alphaEquivalent(base, other_ub));
}

TEST(CanonicalHashTest, FreeVariablesAndTagsHashVerbatim)
{
    // Free (unbound) variables are semantic payload.
    auto x = eg::parseTerm("(use var:x)");
    auto y = eg::parseTerm("(use var:y)");
    EXPECT_NE(sl::canonicalTermHash(x), sl::canonicalTermHash(y));

    // Memory tags realize program order and must never be merged.
    auto tag_a = eg::parseTerm("(store:tagA const:1:i32 var:p)");
    auto tag_b = eg::parseTerm("(store:tagB const:1:i32 var:p)");
    EXPECT_NE(sl::canonicalTermHash(tag_a),
              sl::canonicalTermHash(tag_b));
    EXPECT_FALSE(sl::alphaEquivalent(tag_a, tag_b));
}

TEST(CanonicalHashTest, ShadowingResolvesInnermost)
{
    // The inner loop rebinds %i; the renamed twin rebinds consistently.
    auto a = eg::parseTerm(
        "(affine.for:i:L0 const:0:index const:4:index const:1:index"
        " (affine.for:i:L1 const:0:index var:i const:1:index"
        "  (use var:i)))");
    auto b = eg::parseTerm(
        "(affine.for:p:L8 const:0:index const:4:index const:1:index"
        " (affine.for:q:L9 const:0:index var:p const:1:index"
        "  (use var:q)))");
    EXPECT_EQ(sl::canonicalTermHash(a), sl::canonicalTermHash(b));
    EXPECT_TRUE(sl::alphaEquivalent(a, b));
}

TEST(CanonicalHashTest, VerifyKeyRespectsAlphaAndBudget)
{
    auto lhs = eg::parseTerm("(affine.for:i:L0 const:0:index"
                             " const:8:index const:1:index"
                             " (use var:i))");
    auto lhs_renamed = eg::parseTerm("(affine.for:z:L5 const:0:index"
                                     " const:8:index const:1:index"
                                     " (use var:z))");
    auto rhs = eg::parseTerm("(use var:x)");
    uint64_t key = verifyKey(lhs, rhs, 2, 77, 1000);
    EXPECT_EQ(key, verifyKey(lhs_renamed, rhs, 2, 77, 1000));
    // Different simulation budget or seed = a different verdict.
    EXPECT_NE(key, verifyKey(lhs, rhs, 3, 77, 1000));
    EXPECT_NE(key, verifyKey(lhs, rhs, 2, 78, 1000));
    // Orientation matters: (before, after) is not (after, before).
    EXPECT_NE(key, verifyKey(rhs, lhs, 2, 77, 1000));
}

// ---------------------------------------------------------------------
// Deterministic name scope
// ---------------------------------------------------------------------

TEST(NameScopeTest, SameSeedSameStream)
{
    std::vector<std::string> first, second;
    {
        sl::NameScope scope(0xABCDEF);
        for (int i = 0; i < 4; ++i)
            first.push_back(sl::freshTag());
        first.push_back(sl::freshLoopId());
    }
    {
        sl::NameScope scope(0xABCDEF);
        for (int i = 0; i < 4; ++i)
            second.push_back(sl::freshTag());
        second.push_back(sl::freshLoopId());
    }
    EXPECT_EQ(first, second);

    sl::NameScope other(0x123456);
    EXPECT_NE(first[0], sl::freshTag());
}

TEST(NameScopeTest, NestingRestoresTheOuterStream)
{
    sl::NameScope outer(1);
    std::string a = sl::freshTag();
    {
        sl::NameScope inner(2);
        std::string inner_tag = sl::freshTag();
        EXPECT_NE(inner_tag, a);
    }
    // Back on the outer stream: the next draw continues it, and a
    // rerun of the same nesting reproduces it exactly.
    std::string b = sl::freshTag();
    sl::NameScope replay(1);
    EXPECT_EQ(a, sl::freshTag());
    EXPECT_EQ(b, sl::freshTag());
}

// ---------------------------------------------------------------------
// The two-level cache: memoization + persistence
// ---------------------------------------------------------------------

PassOutcome
replacedOutcome()
{
    PassOutcome outcome;
    outcome.status = PassOutcome::Status::Replaced;
    outcome.replacement = eg::parseTerm(
        "(affine.for:i:L0 const:0:index const:8:index const:1:index"
        " (store:t1 (load:t0 var:i) var:i))");
    LoopRegistryEntry entry;
    entry.constraints.ii = 2;
    entry.constraints.latency = 5;
    entry.constraints.full_latency = 21;
    entry.constraints.trip = 8;
    entry.constraints.pipelined = true;
    entry.constraints.loop_id = "L0";
    entry.constraints.accesses["mem a"] = 3; // space needs escaping
    entry.coalesced = true;
    outcome.schedule.emplace_back("L0", entry);
    return outcome;
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(EvalCacheTest, DiskRoundTripPreservesOutcomesAndVerdicts)
{
    ExternalEvalCache cache;
    cache.insertPass(1, PassOutcome{}); // NotApplied
    PassOutcome rejected;
    rejected.status = PassOutcome::Status::Rejected;
    rejected.detail = "co-simulation mismatch: out[3] 1% vs 2";
    cache.insertPass(2, rejected);
    cache.insertPass(3, replacedOutcome());
    VerifyVerdict verdict;
    verdict.result = VerifyVerdict::Result::Mismatch;
    verdict.diag = "run 1 diverged";
    cache.insertVerify(9, verdict);

    std::string path = tempPath("pass_cache_roundtrip.txt");
    std::string error;
    ASSERT_TRUE(cache.saveFile(path, &error)) << error;

    ExternalEvalCache loaded;
    ASSERT_EQ(loaded.loadFile(path, &error), 4u) << error;
    EXPECT_EQ(loaded.stats().disk_entries_loaded, 4u);
    EXPECT_FALSE(loaded.stats().disk_load_failed);

    auto not_applied = loaded.lookupPass(1);
    ASSERT_TRUE(not_applied.has_value());
    EXPECT_EQ(not_applied->status, PassOutcome::Status::NotApplied);

    auto rej = loaded.lookupPass(2);
    ASSERT_TRUE(rej.has_value());
    EXPECT_EQ(rej->status, PassOutcome::Status::Rejected);
    EXPECT_EQ(rej->detail, rejected.detail);

    auto rep = loaded.lookupPass(3);
    ASSERT_TRUE(rep.has_value());
    ASSERT_EQ(rep->status, PassOutcome::Status::Replaced);
    ASSERT_TRUE(rep->replacement != nullptr);
    EXPECT_EQ(rep->replacement->str(),
              replacedOutcome().replacement->str());
    ASSERT_EQ(rep->schedule.size(), 1u);
    EXPECT_EQ(rep->schedule[0].first, "L0");
    const LoopRegistryEntry &entry = rep->schedule[0].second;
    EXPECT_EQ(entry.constraints.ii, 2);
    EXPECT_EQ(entry.constraints.latency, 5);
    EXPECT_EQ(entry.constraints.full_latency, 21);
    ASSERT_TRUE(entry.constraints.trip.has_value());
    EXPECT_EQ(*entry.constraints.trip, 8);
    EXPECT_TRUE(entry.constraints.pipelined);
    EXPECT_TRUE(entry.coalesced);
    ASSERT_EQ(entry.constraints.accesses.size(), 1u);
    EXPECT_EQ(entry.constraints.accesses.at("mem a"), 3);

    auto v = loaded.lookupVerify(9);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->result, VerifyVerdict::Result::Mismatch);
    EXPECT_EQ(v->diag, verdict.diag);
}

TEST(EvalCacheTest, SaveIsByteStableAcrossInsertionOrder)
{
    ExternalEvalCache forward, backward;
    PassOutcome rejected;
    rejected.status = PassOutcome::Status::Rejected;
    rejected.detail = "nope";
    forward.insertPass(1, PassOutcome{});
    forward.insertPass(2, rejected);
    backward.insertPass(2, rejected);
    backward.insertPass(1, PassOutcome{});

    std::string pa = tempPath("pass_cache_a.txt");
    std::string pb = tempPath("pass_cache_b.txt");
    std::string error;
    ASSERT_TRUE(forward.saveFile(pa, &error)) << error;
    ASSERT_TRUE(backward.saveFile(pb, &error)) << error;
    std::ifstream fa(pa), fb(pb);
    std::string ca((std::istreambuf_iterator<char>(fa)),
                   std::istreambuf_iterator<char>());
    std::string cb((std::istreambuf_iterator<char>(fb)),
                   std::istreambuf_iterator<char>());
    EXPECT_EQ(ca, cb);
    EXPECT_NE(ca.find("seer-pass-cache"), std::string::npos);
}

TEST(EvalCacheTest, CorruptFileColdStartsInsteadOfHalfLoading)
{
    std::string path = tempPath("pass_cache_corrupt.txt");
    {
        ExternalEvalCache cache;
        cache.insertPass(1, PassOutcome{});
        std::string error;
        ASSERT_TRUE(cache.saveFile(path, &error)) << error;
    }
    // Truncate/garble the tail: the loader must discard everything.
    std::ofstream out(path, std::ios::app);
    out << "P deadbeef not-a-valid-record\n";
    out.close();

    ExternalEvalCache loaded;
    std::string error;
    EXPECT_EQ(loaded.loadFile(path, &error), 0u);
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(loaded.stats().disk_load_failed);
    EXPECT_FALSE(loaded.lookupPass(1).has_value());
}

TEST(EvalCacheTest, MissingFileIsASilentColdStart)
{
    ExternalEvalCache cache;
    std::string error;
    EXPECT_EQ(cache.loadFile(tempPath("no_such_cache.txt"), &error), 0u);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_FALSE(cache.stats().disk_load_failed);
}

TEST(EvalCacheTest, EphemeralModeDropsOutcomesButKeepsStats)
{
    ExternalEvalCache cache(false);
    EXPECT_FALSE(cache.persistent());
    cache.insertPass(5, PassOutcome{});
    EXPECT_TRUE(cache.probePass(5));
    cache.clearOutcomes();
    EXPECT_FALSE(cache.lookupPass(5).has_value());
    // One hit (the probe) and one miss (the post-clear probe).
    EXPECT_FALSE(cache.probePass(5));
    EXPECT_EQ(cache.stats().pass_cache_hits, 1u);
    EXPECT_EQ(cache.stats().pass_cache_misses, 1u);
}

// ---------------------------------------------------------------------
// Cooperative deadline cancellation
// ---------------------------------------------------------------------

TEST(DeadlineTest, ExpiredEvaluationIsDiscardedNotCached)
{
    auto term = eg::parseTerm(
        "(affine.for:i:L0 const:0:index const:8:index const:1:index"
        " (store:t0 (load:t0 var:i) var:i))");
    ExternalEvalCache cache;
    SnippetEvalConfig config;
    config.exec = ExecContext::make();
    config.exec.setDeadline(std::chrono::steady_clock::now() -
                            std::chrono::seconds(1)); // already expired
    std::atomic<int> pass_runs{0};
    auto outcome = evaluateSnippet(
        term, 42,
        [&](ir::Operation &) {
            ++pass_runs;
            return false;
        },
        config, cache);
    EXPECT_FALSE(outcome.has_value());
    EXPECT_EQ(cache.stats().canceled, 1u);
    // A canceled result is budget-dependent; nothing may be memoized.
    EXPECT_FALSE(cache.lookupPass(42).has_value());
}

// ---------------------------------------------------------------------
// End-to-end determinism: -j 1 == -j N, cache-on == cache-off
// ---------------------------------------------------------------------

const char *kFusable = R"(
func.func @fusable(%a: memref<64xi32>, %b: memref<64xi32>,
                   %c: memref<64xi32>) {
  affine.for %i = 0 to 32 {
    %v = memref.load %a[%i] : memref<64xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%i] : memref<64xi32>
  }
  affine.for %j = 0 to 32 {
    %v = memref.load %b[%j] : memref<64xi32>
    %c2 = arith.constant 2 : i32
    %w = arith.muli %v, %c2 : i32
    memref.store %w, %c[%j] : memref<64xi32>
  }
})";

struct RunSnapshot
{
    std::string module;
    std::string extracted;
    size_t unions;
    size_t nodes;
    size_t classes;
    size_t rejected;

    bool
    operator==(const RunSnapshot &other) const
    {
        return module == other.module && extracted == other.extracted &&
               unions == other.unions && nodes == other.nodes &&
               classes == other.classes && rejected == other.rejected;
    }
};

RunSnapshot
runWith(const SeerOptions &options)
{
    ir::Module input = ir::parseModule(kFusable);
    SeerResult result = optimize(input, "fusable", options);
    RunSnapshot snap;
    snap.module = ir::toString(result.module);
    snap.extracted =
        result.extracted_term ? result.extracted_term->str() : "";
    snap.unions = result.stats.unions_applied;
    snap.nodes = result.stats.egraph_nodes;
    snap.classes = result.stats.egraph_classes;
    snap.rejected = result.stats.rejected_externals;
    return snap;
}

TEST(DeterminismTest, JobsOneEqualsJobsEight)
{
    SeerOptions serial;
    RunSnapshot base = runWith(serial);
    EXPECT_GT(base.unions, 0u);

    for (unsigned jobs : {2u, 8u}) {
        SeerOptions parallel;
        parallel.jobs = jobs;
        EXPECT_TRUE(base == runWith(parallel))
            << "-j " << jobs << " diverged from -j 1";
    }
}

TEST(DeterminismTest, CacheOnEqualsCacheOff)
{
    SeerOptions cached; // default: cache on
    SeerOptions cold;
    cold.use_pass_cache = false;
    EXPECT_TRUE(runWith(cached) == runWith(cold));
}

TEST(DeterminismTest, WarmSharedCacheReplaysWithoutEvaluating)
{
    SeerOptions options;
    options.shared_eval_cache = std::make_shared<ExternalEvalCache>();
    RunSnapshot cold = runWith(options);
    ir::Module input = ir::parseModule(kFusable);
    SeerResult warm = optimize(input, "fusable", options);

    // Identical exploration, zero cold evaluations the second time.
    EXPECT_EQ(cold.module, ir::toString(warm.module));
    EXPECT_EQ(cold.unions, warm.stats.unions_applied);
    EXPECT_EQ(warm.stats.external_eval.evaluations, 0u);
    EXPECT_GT(warm.stats.external_eval.pass_cache_hits, 0u);
}

TEST(DeterminismTest, DiskCacheWarmsAcrossRuns)
{
    std::string path = tempPath("pass_cache_disk_warm.txt");
    std::remove(path.c_str());
    SeerOptions options;
    options.pass_cache_file = path;
    RunSnapshot first = runWith(options);

    ir::Module input = ir::parseModule(kFusable);
    SeerResult second = optimize(input, "fusable", options);
    EXPECT_EQ(first.module, ir::toString(second.module));
    EXPECT_GT(second.stats.external_eval.disk_entries_loaded, 0u);
    EXPECT_EQ(second.stats.external_eval.evaluations, 0u);
    std::remove(path.c_str());
}

TEST(DeterminismTest, StatsJsonCarriesExternalEvalSection)
{
    SeerOptions options;
    ir::Module input = ir::parseModule(kFusable);
    SeerResult result = optimize(input, "fusable", options);
    std::string dumped = toJson(result.stats).dump();
    EXPECT_NE(dumped.find("external_eval"), std::string::npos);
    EXPECT_NE(dumped.find("pass_cache_hits"), std::string::npos);
    EXPECT_NE(dumped.find("verify_cache_hits"), std::string::npos);
    EXPECT_NE(dumped.find("candidates_deduped"), std::string::npos);
}

// ---------------------------------------------------------------------
// Thread-safe symbol interner (the worker pool's shared table)
// ---------------------------------------------------------------------

TEST(InternerTest, ConcurrentInternAndStrAgree)
{
    // 8 workers intern an overlapping set of fresh strings while
    // reading others back; every text must map to one stable id.
    constexpr size_t kNames = 512;
    std::vector<std::string> texts;
    for (size_t i = 0; i < kNames; ++i)
        texts.push_back("intern-stress-" + std::to_string(i));
    std::vector<uint32_t> ids(kNames * 8);
    parallelFor(kNames * 8, 8, [&](size_t i) {
        Symbol symbol(texts[i % kNames]);
        EXPECT_EQ(symbol.str(), texts[i % kNames]);
        ids[i] = symbol.id();
    });
    for (size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], ids[i % kNames]);
}

} // namespace
} // namespace seer::core
