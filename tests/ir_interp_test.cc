/** Interpreter tests: functional semantics, traps, and profiling. */
#include <gtest/gtest.h>

#include "ir/interp.h"
#include "ir/parser.h"
#include "support/error.h"

namespace seer::ir {
namespace {

int64_t
runScalar(const std::string &text, std::vector<RtValue> args = {},
          const std::string &func = "f")
{
    Module m = parseModule(text);
    InterpResult r = interpret(m, func, std::move(args));
    EXPECT_EQ(r.results.size(), 1u);
    return std::get<int64_t>(r.results[0]);
}

TEST(InterpTest, ConstantsAndArith)
{
    EXPECT_EQ(runScalar(R"(
func.func @f() -> i32 {
  %a = arith.constant 20 : i32
  %b = arith.constant 22 : i32
  %c = arith.addi %a, %b : i32
  func.return %c : i32
})"),
              42);
}

TEST(InterpTest, WidthWrapping)
{
    // i8: 127 + 1 wraps to -128.
    EXPECT_EQ(runScalar(R"(
func.func @f() -> i8 {
  %a = arith.constant 127 : i8
  %b = arith.constant 1 : i8
  %c = arith.addi %a, %b : i8
  func.return %c : i8
})"),
              -128);
}

TEST(InterpTest, ShiftAndMaskOps)
{
    EXPECT_EQ(runScalar(R"(
func.func @f() -> i32 {
  %a = arith.constant 3 : i32
  %one = arith.constant 1 : i32
  %sh = arith.shli %a, %one : i32
  %r = arith.addi %sh, %a : i32
  func.return %r : i32
})"),
              9); // (3<<1)+3
}

TEST(InterpTest, SignedUnsignedDivision)
{
    EXPECT_EQ(runScalar(R"(
func.func @f() -> i32 {
  %a = arith.constant -7 : i32
  %b = arith.constant 2 : i32
  %r = arith.divsi %a, %b : i32
  func.return %r : i32
})"),
              -3);
    EXPECT_EQ(runScalar(R"(
func.func @f() -> i8 {
  %a = arith.constant -1 : i8
  %b = arith.constant 16 : i8
  %r = arith.divui %a, %b : i8
  func.return %r : i8
})"),
              15); // 255 / 16
}

TEST(InterpTest, CmpAndSelect)
{
    EXPECT_EQ(runScalar(R"(
func.func @f(%a: i32, %b: i32) -> i32 {
  %c = arith.cmpi slt, %a, %b : i32
  %r = arith.select %c, %a, %b : i32
  func.return %r : i32
})",
                        {int64_t{4}, int64_t{9}}),
              4);
}

TEST(InterpTest, UnsignedCompareUsesWidth)
{
    // -1 as u8 is 255 > 1.
    EXPECT_EQ(runScalar(R"(
func.func @f() -> i1 {
  %a = arith.constant -1 : i8
  %b = arith.constant 1 : i8
  %c = arith.cmpi ugt, %a, %b : i8
  func.return %c : i1
})"),
              1);
}

TEST(InterpTest, AffineLoopAccumulatesThroughMemory)
{
    // sum 0..9 into acc[0].
    Module m = parseModule(R"(
func.func @f(%acc: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 10 {
    %v = memref.load %acc[%z] : memref<1xi32>
    %ii = arith.index_cast %i : index to i32
    %n = arith.addi %v, %ii : i32
    memref.store %n, %acc[%z] : memref<1xi32>
  }
})");
    Buffer acc(Type::memref({1}, Type::i32()));
    interpret(m, "f", {&acc});
    EXPECT_EQ(acc.ints[0], 45);
}

TEST(InterpTest, DynamicBoundsLoop)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<64xi32>) {
  %one = arith.constant 1 : i32
  affine.for %jj = 0 to 64 step 8 {
    affine.for %j = %jj to %jj + 8 {
      %v = memref.load %a[%j] : memref<64xi32>
      %n = arith.addi %v, %one : i32
      memref.store %n, %a[%j] : memref<64xi32>
    }
  }
})");
    Buffer a(Type::memref({64}, Type::i32()));
    interpret(m, "f", {&a});
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.ints[i], 1);
}

TEST(InterpTest, ScfIfBranches)
{
    EXPECT_EQ(runScalar(R"(
func.func @f(%c: i1) -> i32 {
  %a = arith.constant 10 : i32
  %b = arith.constant 20 : i32
  %r = scf.if %c -> (i32) {
    scf.yield %a : i32
  } else {
    scf.yield %b : i32
  }
  func.return %r : i32
})",
                        {int64_t{1}}),
              10);
}

TEST(InterpTest, ScfWhileCountsToLimit)
{
    Module m = parseModule(R"(
func.func @f(%s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %limit = arith.constant 10 : i32
  %one = arith.constant 1 : i32
  scf.while {
    %v = memref.load %s[%z] : memref<1xi32>
    %cond = arith.cmpi slt, %v, %limit : i32
    scf.condition %cond
  } do {
    %v = memref.load %s[%z] : memref<1xi32>
    %n = arith.addi %v, %one : i32
    memref.store %n, %s[%z] : memref<1xi32>
  }
})");
    Buffer s(Type::memref({1}, Type::i32()));
    interpret(m, "f", {&s});
    EXPECT_EQ(s.ints[0], 10);
}

TEST(InterpTest, FloatArithmetic)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<1xf64>) {
  %z = arith.constant 0 : index
  %x = arith.constant 1.5 : f64
  %y = arith.constant 2.0 : f64
  %p = arith.mulf %x, %y : f64
  %q = arith.addf %p, %x : f64
  memref.store %q, %a[%z] : memref<1xf64>
})");
    Buffer a(Type::memref({1}, Type::f64()));
    interpret(m, "f", {&a});
    EXPECT_DOUBLE_EQ(a.floats[0], 4.5);
}

TEST(InterpTest, FunctionCalls)
{
    EXPECT_EQ(runScalar(R"(
func.func @sq(%x: i32) -> i32 {
  %r = arith.muli %x, %x : i32
  func.return %r : i32
}
func.func @f(%a: i32) -> i32 {
  %r = func.call @sq(%a) : (i32) -> (i32)
  func.return %r : i32
})",
                        {int64_t{6}}),
              36);
}

TEST(InterpTest, OutOfBoundsTraps)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<4xi32>) {
  %i = arith.constant 4 : index
  %v = memref.load %a[%i] : memref<4xi32>
})");
    Buffer a(Type::memref({4}, Type::i32()));
    EXPECT_THROW(interpret(m, "f", {&a}), FatalError);
}

TEST(InterpTest, DivisionByZeroTraps)
{
    EXPECT_THROW(runScalar(R"(
func.func @f() -> i32 {
  %a = arith.constant 1 : i32
  %b = arith.constant 0 : i32
  %r = arith.divsi %a, %b : i32
  func.return %r : i32
})"),
                 FatalError);
}

TEST(InterpTest, StepLimitGuards)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 1000000 {
    %v = memref.load %a[%z] : memref<1xi32>
    memref.store %v, %a[%z] : memref<1xi32>
  }
})");
    Buffer a(Type::memref({1}, Type::i32()));
    InterpOptions options;
    options.max_steps = 1000;
    EXPECT_THROW(interpret(m, "f", {&a}, options), FatalError);
}

TEST(InterpTest, ProfileCountsLoopIterations)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<24xi32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 6 {
      %idx = arith.muli %i, %j : index
      %v = memref.load %a[%j] : memref<24xi32>
      memref.store %v, %a[%j] : memref<24xi32>
    }
  }
})");
    Buffer a(Type::memref({24}, Type::i32()));
    InterpOptions options;
    options.profile = true;
    InterpResult r = interpret(m, "f", {&a}, options);
    ASSERT_EQ(r.profile.loops.size(), 2u);
    uint64_t entries_total = 0, iters_total = 0;
    for (const auto &[op, counts] : r.profile.loops) {
        entries_total += counts.first;
        iters_total += counts.second;
    }
    // Outer: entered once, 4 iters. Inner: entered 4 times, 24 iters.
    EXPECT_EQ(entries_total, 5u);
    EXPECT_EQ(iters_total, 28u);
}

TEST(InterpTest, CastSemantics)
{
    EXPECT_EQ(runScalar(R"(
func.func @f() -> i32 {
  %a = arith.constant -1 : i8
  %u = arith.extui %a : i8 to i32
  func.return %u : i32
})"),
              255);
    EXPECT_EQ(runScalar(R"(
func.func @f() -> i8 {
  %a = arith.constant 257 : i32
  %t = arith.trunci %a : i32 to i8
  func.return %t : i8
})"),
              1);
}

/** Run `text` expecting a trap; returns the structured kind. */
TrapKind
trapKindOf(const std::string &text, std::vector<RtValue> args = {},
           InterpOptions options = {})
{
    Module m = parseModule(text);
    try {
        interpret(m, "f", std::move(args), options);
    } catch (const InterpError &err) {
        return err.kind();
    }
    ADD_FAILURE() << "expected a trap";
    return TrapKind::Unsupported;
}

TEST(InterpTest, TrapKindsAreStructured)
{
    EXPECT_EQ(trapKindOf(R"(
func.func @f() -> i32 {
  %a = arith.constant 1 : i32
  %z = arith.constant 0 : i32
  %d = arith.divsi %a, %z : i32
  func.return %d : i32
})"),
              TrapKind::DivideByZero);

    Module oob = parseModule(R"(
func.func @f(%a: memref<4xi32>) {
  %i = arith.constant 9 : index
  %v = memref.load %a[%i] : memref<4xi32>
  func.return
})");
    Buffer buffer(Type::memref({4}, Type::i32()));
    try {
        interpret(oob, "f", {&buffer});
        ADD_FAILURE() << "expected a trap";
    } catch (const InterpError &err) {
        EXPECT_EQ(err.kind(), TrapKind::OutOfBounds);
        EXPECT_FALSE(err.isCancellation());
        // The message text is unchanged by the structured kind.
        EXPECT_NE(std::string(err.what()).find("out-of-bounds"),
                  std::string::npos);
    }
}

TEST(InterpTest, StepLimitAndDeadlineKindsDiffer)
{
    const std::string spin = R"(
func.func @f() {
  %c0 = arith.constant 0 : index
  affine.for %i = 0 to 1000000 {
    %x = arith.constant 1 : i32
  }
  func.return
})";
    InterpOptions tight;
    tight.max_steps = 100;
    EXPECT_EQ(trapKindOf(spin, {}, tight), TrapKind::StepLimit);

    InterpOptions expired;
    expired.exec = seer::ExecContext::make();
    expired.exec.setDeadline(std::chrono::steady_clock::now());
    TrapKind kind = trapKindOf(spin, {}, expired);
    EXPECT_EQ(kind, TrapKind::Deadline);

    // Cancellation is the one kind callers may treat as benign.
    try {
        interpret(parseModule(spin), "f", {}, expired);
        ADD_FAILURE() << "expected cancellation";
    } catch (const InterpError &err) {
        EXPECT_TRUE(err.isCancellation());
    }
}

TEST(InterpTest, BadCallKind)
{
    Module m = parseModule(R"(
func.func @f() {
  func.return
})");
    try {
        interpret(m, "nope", {});
        ADD_FAILURE() << "expected a trap";
    } catch (const InterpError &err) {
        EXPECT_EQ(err.kind(), TrapKind::BadCall);
    }
}

TEST(InterpTest, TrapKindNamesAreStable)
{
    EXPECT_STREQ(trapKindName(TrapKind::Deadline), "deadline");
    EXPECT_STREQ(trapKindName(TrapKind::StepLimit), "step_limit");
    EXPECT_STREQ(trapKindName(TrapKind::OutOfBounds), "out_of_bounds");
    EXPECT_STREQ(trapKindName(TrapKind::DivideByZero),
                 "divide_by_zero");
    EXPECT_STREQ(trapKindName(TrapKind::BadCall), "bad_call");
    EXPECT_STREQ(trapKindName(TrapKind::Unsupported), "unsupported");
}

} // namespace
} // namespace seer::ir
