/**
 * @file
 * Parameterized property tests of the HLS model: the latency law
 * L = (N-1)*P + l over trip-count sweeps, monotonicity of the area
 * model, pipelining win/loss accounting, and SEER's motivating-example
 * choice (a fast unit-test version of the Table 1 harness).
 */
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "core/seer.h"
#include "hls/hls.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/passes.h"

namespace seer::hls {
namespace {

using namespace ir;

HlsReport
evalElementwise(int64_t trips, bool pipeline)
{
    std::string source = "func.func @f(%a: memref<1024xi32>) {\n"
                         "  affine.for %i = 0 to " +
                         std::to_string(trips) +
                         " {\n"
                         "    %v = memref.load %a[%i] : memref<1024xi32>\n"
                         "    %w = arith.addi %v, %v : i32\n"
                         "    memref.store %w, %a[%i] : memref<1024xi32>\n"
                         "  }\n}";
    Module m = parseModule(source);
    Buffer a(Type::memref({1024}, Type::i32()));
    HlsOptions options;
    options.schedule.pipeline_loops = pipeline;
    return evaluate(m, "f", {&a}, options);
}

class LatencyLaw : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(LatencyLaw, PipelinedCyclesFollowEqnOne)
{
    int64_t trips = GetParam();
    HlsReport report = evalElementwise(trips, /*pipeline=*/true);
    ASSERT_EQ(report.loops.size(), 1u);
    const LoopReport &lr = report.loops.begin()->second;
    EXPECT_TRUE(lr.constraints.pipelined);
    uint64_t law =
        (static_cast<uint64_t>(trips) - 1) *
            static_cast<uint64_t>(lr.constraints.ii) +
        static_cast<uint64_t>(lr.constraints.latency);
    EXPECT_GE(report.total_cycles, law);
    EXPECT_LE(report.total_cycles, law + 4); // small fixed overhead
}

TEST_P(LatencyLaw, BaselineScalesWithIterationLatency)
{
    int64_t trips = GetParam();
    HlsReport report = evalElementwise(trips, /*pipeline=*/false);
    const LoopReport &lr = report.loops.begin()->second;
    EXPECT_FALSE(lr.constraints.pipelined);
    uint64_t law = static_cast<uint64_t>(trips) *
                   static_cast<uint64_t>(lr.constraints.latency);
    EXPECT_GE(report.total_cycles, law);
    EXPECT_LE(report.total_cycles, law + 4);
}

TEST_P(LatencyLaw, PipeliningNeverSlower)
{
    int64_t trips = GetParam();
    HlsReport base = evalElementwise(trips, false);
    HlsReport piped = evalElementwise(trips, true);
    EXPECT_LE(piped.total_cycles, base.total_cycles);
    // The single-port array caps II at 2 while the baseline pays the
    // full l=3 per iteration: a ~1.5x win that grows with trip count.
    if (trips >= 64) {
        EXPECT_LT(piped.total_cycles * 4, base.total_cycles * 3);
    }
}

INSTANTIATE_TEST_SUITE_P(Trips, LatencyLaw,
                         ::testing::Values(1, 2, 3, 8, 64, 512, 1024));

TEST(AreaMonotonicityTest, WiderDatapathCostsMore)
{
    auto area_of = [](const char *type) {
        std::string source =
            std::string("func.func @f(%a: memref<64x") + type +
            ">) {\n  affine.for %i = 0 to 64 {\n    %v = memref.load "
            "%a[%i] : memref<64x" +
            type + ">\n    %w = arith.muli %v, %v : " + type +
            "\n    memref.store %w, %a[%i] : memref<64x" + type +
            ">\n  }\n}";
        Module m = parseModule(source);
        return estimateArea(m, "f");
    };
    double w8 = area_of("i8");
    double w16 = area_of("i16");
    double w32 = area_of("i32");
    EXPECT_LT(w8, w16);
    EXPECT_LT(w16, w32);
}

TEST(AreaMonotonicityTest, UnrollingGrowsDatapath)
{
    const char *rolled = R"(
func.func @f(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %w = arith.muli %v, %v : i32
    memref.store %w, %a[%i] : memref<8xi32>
  }
})";
    Module m = parseModule(rolled);
    double before = estimateArea(m, "f");
    auto pass = passes::createPass("loop-unroll");
    pass->run(*m.firstFunc());
    double after = estimateArea(m, "f");
    EXPECT_GT(after, before * 2);
}

TEST(MotivatingChoiceTest, SeerPicksTheBetterFusionPerCase)
{
    // The Table 1 claim as a fast unit test (reduced chain depths).
    for (auto [f, g, h] : {std::tuple{3, 20, 1}, std::tuple{1, 20, 3}}) {
        ir::Module listing2 = parseModule(
            bench::motivatingListing(2, f, g, h));
        ir::Module listing3 = parseModule(
            bench::motivatingListing(3, f, g, h));
        ir::Module input = parseModule(
            bench::motivatingListing(1, f, g, h));
        core::SeerResult result = core::optimize(input, "motivating");
        // SEER's choice must fuse exactly one pair (two loops remain).
        size_t loops = 0;
        walk(result.module, [&](Operation &op) {
            if (isa(op, opnames::kAffineFor))
                ++loops;
        });
        EXPECT_EQ(loops, 2u) << "f=" << f << " h=" << h << "\n"
                             << toString(result.module);
    }
}

TEST(PowerModelTest, FasterDesignsBurnMorePowerSameWork)
{
    // Same computation in half the time -> roughly the dynamic energy
    // over less time, so power must not drop.
    HlsReport base = evalElementwise(512, false);
    HlsReport piped = evalElementwise(512, true);
    EXPECT_GT(piped.power_mw, base.power_mw);
}

TEST(CriticalPathTest, FloorAndOperatorCeiling)
{
    HlsReport report = evalElementwise(64, true);
    EXPECT_GE(report.critical_path_ns, 0.9);  // clock floor
    EXPECT_LE(report.critical_path_ns, 1.55); // no monster chains
}

} // namespace
} // namespace seer::hls
