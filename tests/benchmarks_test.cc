/** Benchmark suite tests: every kernel matches its golden reference. */
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "support/error.h"
#include "ir/analysis.h"
#include "ir/ops.h"
#include "ir/parser.h"
#include "ir/verifier.h"

namespace seer::bench {
namespace {

class GoldenTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenTest, KernelMatchesGoldenOnMultipleSeeds)
{
    const Benchmark &benchmark = findBenchmark(GetParam());
    for (uint64_t seed : {1u, 2u, 17u, 123u})
        EXPECT_EQ(checkGolden(benchmark, seed), "") << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GoldenTest,
    ::testing::Values("seq_loops", "byte_enable_calc",
                      "byte_enable_manual", "kmp", "gemm_ncubed",
                      "gemm_blocked", "md_knn", "md_grid", "sort_merge",
                      "sort_radix"),
    [](const auto &info) { return info.param; });

TEST(BenchmarkRegistryTest, NineBenchmarksRegistered)
{
    EXPECT_EQ(allBenchmarks().size(), 9u);
    EXPECT_THROW(findBenchmark("nope"), FatalError);
}

TEST(BenchmarkRegistryTest, SourcesVerify)
{
    for (const Benchmark &benchmark : allBenchmarks()) {
        ir::Module module = parseBenchmark(benchmark);
        EXPECT_NE(module.lookupFunc(benchmark.func), nullptr)
            << benchmark.name;
    }
}

TEST(BenchmarkRegistryTest, ManualVariantIsEquivalentToOriginal)
{
    // The expert-optimized byte_enable must compute the same out[].
    const Benchmark &original = findBenchmark("byte_enable_calc");
    const Benchmark &manual = byteEnableManual();
    for (uint64_t seed : {3u, 9u}) {
        ir::Module om = parseBenchmark(original);
        ir::Module mm = parseBenchmark(manual);
        auto ob = makeBuffers(om, original.func);
        auto mb = makeBuffers(mm, manual.func);
        Rng rng1(seed), rng2(seed);
        original.prepare(ob, rng1);
        manual.prepare(mb, rng2);
        std::vector<ir::RtValue> oa, ma;
        for (auto &buffer : ob)
            oa.push_back(&buffer);
        for (auto &buffer : mb)
            ma.push_back(&buffer);
        ir::interpret(om, original.func, std::move(oa));
        ir::interpret(mm, manual.func, std::move(ma));
        EXPECT_EQ(ob[2].ints, mb[2].ints); // out[]
    }
}

TEST(MotivatingExampleTest, AllListingsAgree)
{
    for (auto [f, g, h] : {std::tuple{10, 100, 1}, std::tuple{1, 100, 10}}) {
        std::vector<std::vector<int64_t>> results;
        for (int listing = 1; listing <= 3; ++listing) {
            ir::Module m = ir::parseModule(
                motivatingListing(listing, f, g, h));
            ir::verifyOrDie(m);
            std::vector<ir::Buffer> buffers =
                makeBuffers(m, "motivating");
            Rng rng(7);
            for (auto &v : buffers[0].ints)
                v = rng.nextRange(-100, 100);
            for (auto &v : buffers[1].ints)
                v = rng.nextRange(-100, 100);
            std::vector<ir::RtValue> args;
            for (auto &buffer : buffers)
                args.push_back(&buffer);
            ir::interpret(m, "motivating", std::move(args));
            results.push_back(buffers[4].ints); // y
        }
        EXPECT_EQ(results[0], results[1]);
        EXPECT_EQ(results[0], results[2]);
    }
}

TEST(MotivatingExampleTest, FusionLegalityMatchesFigure2)
{
    // loop_1 + loop_2 fusable, loop_2 + loop_3 fusable, but
    // loop_1 + loop_3 must be blocked by the reversed x access.
    ir::Module m =
        ir::parseModule(motivatingListing(1, 2, 2, 2));
    auto loops =
        ir::topLevelLoops(m.firstFunc()->region(0).block());
    ASSERT_EQ(loops.size(), 3u);
    EXPECT_TRUE(ir::canFuseLoops(*loops[0], *loops[1]));
    EXPECT_TRUE(ir::canFuseLoops(*loops[1], *loops[2]));
    EXPECT_FALSE(ir::canFuseLoops(*loops[0], *loops[2]));
}

} // namespace
} // namespace seer::bench
