/** Parser/printer round-trip tests for the textual IR format. */
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace seer::ir {
namespace {

/** Parse, verify, print, re-parse, re-print: both prints must agree. */
std::string
roundTrip(const std::string &text)
{
    Module first = parseModule(text);
    EXPECT_EQ(verify(first), "");
    std::string printed = toString(first);
    Module second = parseModule(printed);
    EXPECT_EQ(verify(second), "");
    EXPECT_EQ(toString(second), printed);
    return printed;
}

TEST(ParserTest, EmptyFunction)
{
    std::string printed = roundTrip("func.func @f() {}");
    EXPECT_NE(printed.find("func.func @f()"), std::string::npos);
}

TEST(ParserTest, ArithAndConstants)
{
    std::string printed = roundTrip(R"(
func.func @f(%a: i32, %b: i32) -> i32 {
  %c = arith.constant 41 : i32
  %neg = arith.constant -3 : i32
  %s = arith.addi %a, %b : i32
  %m = arith.muli %s, %c : i32
  %x = arith.xori %m, %neg : i32
  func.return %x : i32
})");
    EXPECT_NE(printed.find("arith.constant -3 : i32"), std::string::npos);
    EXPECT_NE(printed.find("arith.addi %a, %b : i32"), std::string::npos);
}

TEST(ParserTest, FloatConstants)
{
    std::string printed = roundTrip(R"(
func.func @f() -> f64 {
  %c = arith.constant 2.5 : f64
  %d = arith.constant 1.0 : f64
  %e = arith.mulf %c, %d : f64
  func.return %e : f64
})");
    EXPECT_NE(printed.find("2.5"), std::string::npos);
    EXPECT_NE(printed.find("1.0"), std::string::npos);
}

TEST(ParserTest, MemRefOps)
{
    roundTrip(R"(
func.func @f(%a: memref<8x8xi32>) {
  %m = memref.alloc() : memref<16xi32>
  %i = arith.constant 3 : index
  %j = arith.constant 4 : index
  %v = memref.load %a[%i, %j] : memref<8x8xi32>
  memref.store %v, %m[%i] : memref<16xi32>
})");
}

TEST(ParserTest, AffineForConstantBounds)
{
    std::string printed = roundTrip(R"(
func.func @f(%a: memref<100xi32>) {
  affine.for %i = 0 to 100 {
    %v = memref.load %a[%i] : memref<100xi32>
    memref.store %v, %a[%i] : memref<100xi32>
  }
})");
    EXPECT_NE(printed.find("affine.for %i = 0 to 100 {"),
              std::string::npos);
}

TEST(ParserTest, AffineForDynamicBounds)
{
    std::string printed = roundTrip(R"(
func.func @f(%a: memref<64xi32>) {
  affine.for %jj = 0 to 64 step 8 {
    affine.for %j = %jj to %jj + 8 {
      %v = memref.load %a[%j] : memref<64xi32>
      memref.store %v, %a[%j] : memref<64xi32>
    }
  }
})");
    EXPECT_NE(printed.find("step 8"), std::string::npos);
    EXPECT_NE(printed.find("%jj to %jj + 8"), std::string::npos);
}

TEST(ParserTest, AffineForScaledBound)
{
    std::string printed = roundTrip(R"(
func.func @f(%a: memref<64xi32>) {
  affine.for %i = 0 to 8 {
    affine.for %j = 2 * %i to 2 * %i + 4 {
      %v = memref.load %a[%j] : memref<64xi32>
      memref.store %v, %a[%j] : memref<64xi32>
    }
  }
})");
    EXPECT_NE(printed.find("2 * %i"), std::string::npos);
}

TEST(ParserTest, ScfIfWithoutResults)
{
    std::string printed = roundTrip(R"(
func.func @f(%a: memref<4xi32>, %c: i1) {
  %i = arith.constant 0 : index
  %v = arith.constant 7 : i32
  scf.if %c {
    memref.store %v, %a[%i] : memref<4xi32>
  }
})");
    // Empty else branch must not be printed.
    EXPECT_EQ(printed.find("else"), std::string::npos);
}

TEST(ParserTest, ScfIfWithResultsAndElse)
{
    std::string printed = roundTrip(R"(
func.func @f(%c: i1, %a: i32, %b: i32) -> i32 {
  %r = scf.if %c -> (i32) {
    scf.yield %a : i32
  } else {
    scf.yield %b : i32
  }
  func.return %r : i32
})");
    EXPECT_NE(printed.find("scf.if %c -> (i32)"), std::string::npos);
    EXPECT_NE(printed.find("else"), std::string::npos);
}

TEST(ParserTest, ScfWhile)
{
    roundTrip(R"(
func.func @f(%s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %limit = arith.constant 10 : i32
  %one = arith.constant 1 : i32
  scf.while {
    %v = memref.load %s[%z] : memref<1xi32>
    %cond = arith.cmpi slt, %v, %limit : i32
    scf.condition %cond
  } do {
    %v2 = memref.load %s[%z] : memref<1xi32>
    %n = arith.addi %v2, %one : i32
    memref.store %n, %s[%z] : memref<1xi32>
  }
})");
}

TEST(ParserTest, CastsPrintBothTypes)
{
    std::string printed = roundTrip(R"(
func.func @f(%a: i8) -> i32 {
  %w = arith.extsi %a : i8 to i32
  func.return %w : i32
})");
    EXPECT_NE(printed.find("arith.extsi %a : i8 to i32"),
              std::string::npos);
}

TEST(ParserTest, CallBetweenFunctions)
{
    roundTrip(R"(
func.func @callee(%x: i32) -> i32 {
  func.return %x : i32
}

func.func @caller(%a: i32) -> i32 {
  %r = func.call @callee(%a) : (i32) -> (i32)
  func.return %r : i32
})");
}

TEST(ParserTest, CommentsAreSkipped)
{
    roundTrip(R"(
// a leading comment
func.func @f() {
  // inside
}
)");
}

TEST(ParserTest, NameCollisionsGetSuffixes)
{
    // Two scopes can reuse %v; printing must disambiguate.
    std::string printed = roundTrip(R"(
func.func @f(%a: memref<4xi32>) {
  affine.for %i = 0 to 4 {
    %v = memref.load %a[%i] : memref<4xi32>
    memref.store %v, %a[%i] : memref<4xi32>
  }
  affine.for %j = 0 to 4 {
    %v = memref.load %a[%j] : memref<4xi32>
    memref.store %v, %a[%j] : memref<4xi32>
  }
})");
    EXPECT_NE(printed.find("%v_1"), std::string::npos);
}

TEST(ParserTest, Errors)
{
    EXPECT_THROW(parseModule("func.func f() {}"), FatalError);
    EXPECT_THROW(parseModule("garbage"), FatalError);
    EXPECT_THROW(parseModule("func.func @f() { %x = arith.addi %y, %y "
                             ": i32 }"),
                 FatalError); // undefined %y
    EXPECT_THROW(parseModule("func.func @f() { %x = bogus.op : i32 }"),
                 FatalError);
    EXPECT_THROW(
        parseModule("func.func @f() { affine.for %i = 0 too 4 { } }"),
        FatalError);
}

TEST(ParserTest, ResultCountMismatchRejected)
{
    EXPECT_THROW(parseModule(R"(
func.func @f(%a: i32) {
  %x, %y = arith.addi %a, %a : i32
})"),
                 FatalError);
}

TEST(ParserTest, ValueScopeEndsWithBlock)
{
    // %v defined in the first loop must not be visible in the second.
    EXPECT_THROW(parseModule(R"(
func.func @f(%a: memref<4xi32>) {
  affine.for %i = 0 to 4 {
    %v = memref.load %a[%i] : memref<4xi32>
  }
  affine.for %j = 0 to 4 {
    memref.store %v, %a[%j] : memref<4xi32>
  }
})"),
                 FatalError);
}

} // namespace
} // namespace seer::ir
