/** Tests for affine analysis, dependence tests, and fusion legality. */
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/parser.h"

namespace seer::ir {
namespace {

/** Find the n-th load/store under the first function. */
Operation *
findAccess(Module &m, size_t n)
{
    std::vector<Operation *> accesses;
    walk(*m.firstFunc(), [&](Operation &op) {
        if (isa(op, opnames::kLoad) || isa(op, opnames::kStore))
            accesses.push_back(&op);
    });
    return n < accesses.size() ? accesses[n] : nullptr;
}

std::vector<Operation *>
functionLoops(Module &m)
{
    return topLevelLoops(m.firstFunc()->region(0).block());
}

TEST(AffineAnalysisTest, UnderstandsLinearForms)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<100xi32>) {
  %c3 = arith.constant 3 : index
  affine.for %i = 0 to 10 {
    %t = arith.muli %i, %c3 : index
    %idx = arith.addi %t, %c3 : index
    %v = memref.load %a[%idx] : memref<100xi32>
    memref.store %v, %a[%idx] : memref<100xi32>
  }
})");
    Operation *load = findAccess(m, 0);
    auto expr = analyzeAffine(load->operand(1));
    ASSERT_TRUE(expr.has_value());
    EXPECT_EQ(expr->constant, 3);
    ASSERT_EQ(expr->coeffs.size(), 1u);
    EXPECT_EQ(expr->coeffs.begin()->second, 3);
}

TEST(AffineAnalysisTest, RefusesShifts)
{
    // (i << 1) + i is 3*i, but a strict polyhedral analyzer refuses it
    // (the Figure 9 tension).
    Module m = parseModule(R"(
func.func @f(%a: memref<100xi32>) {
  %c1 = arith.constant 1 : index
  affine.for %i = 0 to 10 {
    %sh = arith.shli %i, %c1 : index
    %idx = arith.addi %sh, %i : index
    %v = memref.load %a[%idx] : memref<100xi32>
    memref.store %v, %a[%idx] : memref<100xi32>
  }
})");
    Operation *load = findAccess(m, 0);
    EXPECT_FALSE(analyzeAffine(load->operand(1)).has_value());
}

TEST(AffineAnalysisTest, RefusesVariableProducts)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<100xi32>) {
  affine.for %i = 0 to 10 {
    %sq = arith.muli %i, %i : index
    %v = memref.load %a[%sq] : memref<100xi32>
    memref.store %v, %a[%sq] : memref<100xi32>
  }
})");
    Operation *load = findAccess(m, 0);
    EXPECT_FALSE(analyzeAffine(load->operand(1)).has_value());
}

TEST(AffineAnalysisTest, LinearExprAlgebra)
{
    LinearExpr a, b;
    a.constant = 2;
    b.constant = 5;
    LinearExpr sum = a + b;
    EXPECT_EQ(sum.constant, 7);
    EXPECT_TRUE(sum.isConstant());
    LinearExpr scaled = sum.scaled(3);
    EXPECT_EQ(scaled.constant, 21);
    LinearExpr diff = scaled - sum;
    EXPECT_EQ(diff.constant, 14);
}

TEST(FusionTest, IndependentLoopsFuse)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<10xi32>, %b: memref<10xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<10xi32>
    memref.store %v, %a[%i] : memref<10xi32>
  }
  affine.for %j = 0 to 10 {
    %v = memref.load %b[%j] : memref<10xi32>
    memref.store %v, %b[%j] : memref<10xi32>
  }
})");
    auto loops = functionLoops(m);
    ASSERT_EQ(loops.size(), 2u);
    EXPECT_TRUE(canFuseLoops(*loops[0], *loops[1]));
}

TEST(FusionTest, ForwardDependenceFuses)
{
    // Producer x[i], consumer reads x[i]: distance 0, legal.
    Module m = parseModule(R"(
func.func @f(%a: memref<10xi32>, %x: memref<10xi32>,
             %y: memref<10xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<10xi32>
    memref.store %v, %x[%i] : memref<10xi32>
  }
  affine.for %j = 0 to 10 {
    %v = memref.load %x[%j] : memref<10xi32>
    memref.store %v, %y[%j] : memref<10xi32>
  }
})");
    auto loops = functionLoops(m);
    EXPECT_TRUE(canFuseLoops(*loops[0], *loops[1]));
}

TEST(FusionTest, BackwardDependenceBlocksFusion)
{
    // Consumer reads x[i+1], produced later by the first loop: fusing
    // would read stale data.
    Module m = parseModule(R"(
func.func @f(%a: memref<16xi32>, %x: memref<16xi32>,
             %y: memref<10xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<16xi32>
    memref.store %v, %x[%i] : memref<16xi32>
  }
  affine.for %j = 0 to 10 {
    %c1 = arith.constant 1 : index
    %jp = arith.addi %j, %c1 : index
    %v = memref.load %x[%jp] : memref<16xi32>
    memref.store %v, %y[%j] : memref<10xi32>
  }
})");
    auto loops = functionLoops(m);
    EXPECT_FALSE(canFuseLoops(*loops[0], *loops[1]));
}

TEST(FusionTest, ShiftedReadWithinPastIsSafe)
{
    // Second loop reads x[j-1] (already produced when fused): legal.
    Module m = parseModule(R"(
func.func @f(%a: memref<16xi32>, %x: memref<16xi32>,
             %y: memref<16xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<16xi32>
    memref.store %v, %x[%i] : memref<16xi32>
  }
  affine.for %j = 1 to 11 {
    %c1 = arith.constant 1 : index
    %jm = arith.subi %j, %c1 : index
    %v = memref.load %x[%jm] : memref<16xi32>
    memref.store %v, %y[%jm] : memref<16xi32>
  }
})");
    auto loops = functionLoops(m);
    // Bounds differ (0..10 vs 1..11): our conservative fusion refuses.
    EXPECT_FALSE(canFuseLoops(*loops[0], *loops[1]));
}

TEST(FusionTest, NonAffineConflictBlocksFusion)
{
    Module m = parseModule(R"(
func.func @f(%x: memref<64xi32>, %y: memref<64xi32>) {
  %c1 = arith.constant 1 : index
  affine.for %i = 0 to 10 {
    %sh = arith.shli %i, %c1 : index
    %idx = arith.addi %sh, %i : index
    %v = memref.load %x[%idx] : memref<64xi32>
    memref.store %v, %x[%idx] : memref<64xi32>
  }
  affine.for %j = 0 to 10 {
    %v = memref.load %x[%j] : memref<64xi32>
    memref.store %v, %y[%j] : memref<64xi32>
  }
})");
    auto loops = functionLoops(m);
    EXPECT_FALSE(canFuseLoops(*loops[0], *loops[1]));
}

TEST(FusionTest, MismatchedTripCountsBlockFusion)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<20xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<20xi32>
    memref.store %v, %a[%i] : memref<20xi32>
  }
  affine.for %j = 0 to 20 {
    %v = memref.load %a[%j] : memref<20xi32>
    memref.store %v, %a[%j] : memref<20xi32>
  }
})");
    auto loops = functionLoops(m);
    EXPECT_FALSE(canFuseLoops(*loops[0], *loops[1]));
}

TEST(InterchangeTest, PerfectNestDetected)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<4x4xi32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      %v = memref.load %a[%i, %j] : memref<4x4xi32>
      memref.store %v, %a[%i, %j] : memref<4x4xi32>
    }
  }
})");
    auto loops = functionLoops(m);
    Operation *inner = perfectlyNestedInner(*loops[0]);
    ASSERT_NE(inner, nullptr);
    EXPECT_TRUE(canInterchangeLoops(*loops[0], *inner));
}

TEST(InterchangeTest, ImperfectNestRejected)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<4x4xi32>, %s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %c = arith.constant 0 : i32
  affine.for %i = 0 to 4 {
    memref.store %c, %s[%z] : memref<1xi32>
    affine.for %j = 0 to 4 {
      %v = memref.load %a[%i, %j] : memref<4x4xi32>
      memref.store %v, %a[%i, %j] : memref<4x4xi32>
    }
  }
})");
    auto loops = functionLoops(m);
    EXPECT_EQ(perfectlyNestedInner(*loops[0]), nullptr);
}

TEST(InterchangeTest, TriangularBoundsRejected)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<16xi32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = %i to 4 {
      %v = memref.load %a[%j] : memref<16xi32>
      memref.store %v, %a[%j] : memref<16xi32>
    }
  }
})");
    auto loops = functionLoops(m);
    Operation *inner = perfectlyNestedInner(*loops[0]);
    ASSERT_NE(inner, nullptr);
    EXPECT_FALSE(canInterchangeLoops(*loops[0], *inner));
}

TEST(CarriedDependenceTest, ScalarCellRecurrence)
{
    // acc[0] updated every iteration: carried, distance 1.
    Module m = parseModule(R"(
func.func @f(%acc: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 10 {
    %v = memref.load %acc[%z] : memref<1xi32>
    %ii = arith.index_cast %i : index to i32
    %n = arith.addi %v, %ii : i32
    memref.store %n, %acc[%z] : memref<1xi32>
  }
})");
    auto loops = functionLoops(m);
    EXPECT_TRUE(hasLoopCarriedDependence(*loops[0]));
    auto distance = minCarriedDependenceDistance(*loops[0]);
    ASSERT_TRUE(distance.has_value());
    EXPECT_EQ(*distance, 1);
}

TEST(CarriedDependenceTest, ElementwiseLoopIsFree)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<10xi32>, %b: memref<10xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<10xi32>
    memref.store %v, %b[%i] : memref<10xi32>
  }
})");
    auto loops = functionLoops(m);
    EXPECT_FALSE(hasLoopCarriedDependence(*loops[0]));
}

TEST(CarriedDependenceTest, DistanceKRecurrence)
{
    // b[i+3] = f(b[i]): distance 3.
    Module m = parseModule(R"(
func.func @f(%b: memref<32xi32>) {
  %c3 = arith.constant 3 : index
  affine.for %i = 0 to 20 {
    %v = memref.load %b[%i] : memref<32xi32>
    %ip3 = arith.addi %i, %c3 : index
    memref.store %v, %b[%ip3] : memref<32xi32>
  }
})");
    auto loops = functionLoops(m);
    EXPECT_TRUE(hasLoopCarriedDependence(*loops[0]));
    auto distance = minCarriedDependenceDistance(*loops[0]);
    ASSERT_TRUE(distance.has_value());
    EXPECT_EQ(*distance, 3);
}

TEST(AnalysisTest, IsDefinedOutside)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<10xi32>) {
  %c = arith.constant 1 : index
  affine.for %i = 0 to 10 {
    %t = arith.addi %i, %c : index
    %v = memref.load %a[%t] : memref<10xi32>
    memref.store %v, %a[%t] : memref<10xi32>
  }
})");
    auto loops = functionLoops(m);
    Operation &loop = *loops[0];
    Operation *load = nullptr;
    walk(loop, [&](Operation &op) {
        if (isa(op, opnames::kLoad))
            load = &op;
    });
    ASSERT_NE(load, nullptr);
    EXPECT_TRUE(isDefinedOutside(load->operand(0), loop));  // %a
    EXPECT_FALSE(isDefinedOutside(load->operand(1), loop)); // %t
    EXPECT_FALSE(isDefinedOutside(inductionVar(loop), loop));
}

} // namespace
} // namespace seer::ir
