/** Structural IR utilities: cloning, walking, block surgery, printing
 *  stability. */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace seer::ir {
namespace {

const char *kNested = R"(
func.func @f(%a: memref<8xi32>, %s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  memref.store %zero, %s[%z] : memref<1xi32>
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %c = arith.cmpi sgt, %v, %zero : i32
    scf.if %c {
      %acc = memref.load %s[%z] : memref<1xi32>
      %n = arith.addi %acc, %v : i32
      memref.store %n, %s[%z] : memref<1xi32>
    }
  }
})";

TEST(CloneTest, DeepCloneIsIndependent)
{
    Module original = parseModule(kNested);
    Module clone = cloneModule(original);
    EXPECT_EQ(verify(clone), "");
    EXPECT_EQ(toString(original), toString(clone));
    // Mutating the clone must not affect the original.
    Operation *loop = nullptr;
    walk(clone, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            loop = &op;
    });
    ASSERT_NE(loop, nullptr);
    setLoopBounds(*loop, AffineBound::fromConstant(0),
                  AffineBound::fromConstant(4), 1);
    EXPECT_NE(toString(original), toString(clone));
    EXPECT_NE(toString(original).find("0 to 8"), std::string::npos);
}

TEST(CloneTest, CloneRemapsInternalValuesOnly)
{
    Module original = parseModule(kNested);
    Module clone = cloneModule(original);
    // No value impl may be shared between the two modules.
    std::set<ValueImpl *> original_values;
    walk(original, [&](Operation &op) {
        for (size_t i = 0; i < op.numResults(); ++i)
            original_values.insert(op.result(i).impl());
    });
    walk(clone, [&](Operation &op) {
        for (Value operand : op.operands())
            EXPECT_FALSE(original_values.count(operand.impl()));
    });
}

TEST(WalkTest, PreOrderCoversEverything)
{
    Module m = parseModule(kNested);
    std::vector<std::string> order;
    walk(m, [&](Operation &op) { order.push_back(op.nameStr()); });
    // func first, loop before its contents, if before its stores.
    ASSERT_FALSE(order.empty());
    EXPECT_EQ(order[0], "func.func");
    auto loop_pos = std::find(order.begin(), order.end(), "affine.for");
    auto if_pos = std::find(order.begin(), order.end(), "scf.if");
    ASSERT_NE(loop_pos, order.end());
    ASSERT_NE(if_pos, order.end());
    EXPECT_LT(loop_pos - order.begin(), if_pos - order.begin());
}

TEST(WalkTest, PrunedWalkSkipsSubtrees)
{
    Module m = parseModule(kNested);
    size_t seen_inside_if = 0;
    walkPruned(*m.firstFunc(), [&](Operation &op) {
        if (isa(op, opnames::kIf))
            return false; // do not descend
        if (isa(op, opnames::kAddI))
            ++seen_inside_if;
        return true;
    });
    EXPECT_EQ(seen_inside_if, 0u);
}

TEST(BlockSurgeryTest, TakeAndReinsert)
{
    Module m = parseModule(kNested);
    Block &body = m.firstFunc()->region(0).block();
    Operation *store = nullptr;
    for (auto &op : body.ops()) {
        if (isa(*op, opnames::kStore))
            store = op.get();
    }
    ASSERT_NE(store, nullptr);
    size_t before = body.size();
    Operation::Ptr taken = body.take(body.find(store));
    EXPECT_EQ(body.size(), before - 1);
    EXPECT_EQ(taken->parentBlock(), nullptr);
    body.insert(body.find(&body.back()), std::move(taken));
    EXPECT_EQ(body.size(), before);
    EXPECT_EQ(verify(m), "");
}

TEST(BlockSurgeryTest, BuilderInsertionPoints)
{
    Module m = parseModule("func.func @f() {}");
    Block &body = m.firstFunc()->region(0).block();
    // body currently holds only func.return.
    Operation *ret = &body.back();
    OpBuilder before = OpBuilder::before(ret);
    Value c1 = before.intConstant(Type::i32(), 1);
    OpBuilder after_c1 = OpBuilder::after(c1.definingOp());
    after_c1.intConstant(Type::i32(), 2);
    std::vector<int64_t> values;
    for (auto &op : body.ops()) {
        if (isa(*op, opnames::kConstant))
            values.push_back(op->intAttr("value"));
    }
    EXPECT_EQ(values, (std::vector<int64_t>{1, 2}));
    EXPECT_TRUE(isa(body.back(), opnames::kReturn));
}

TEST(PrintStabilityTest, PrintParsePrintIsFixpoint)
{
    Module first = parseModule(kNested);
    std::string once = toString(first);
    Module second = parseModule(once);
    std::string twice = toString(second);
    EXPECT_EQ(once, twice);
}

TEST(ParentChainTest, IsInsideAndParentOp)
{
    Module m = parseModule(kNested);
    Operation *func = m.firstFunc();
    Operation *loop = nullptr, *if_op = nullptr, *inner_store = nullptr;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            loop = &op;
        if (isa(op, opnames::kIf))
            if_op = &op;
        if (isa(op, opnames::kStore) && op.parentOp() &&
            isa(*op.parentOp(), opnames::kIf)) {
            inner_store = &op;
        }
    });
    ASSERT_NE(inner_store, nullptr);
    EXPECT_TRUE(inner_store->isInside(if_op));
    EXPECT_TRUE(inner_store->isInside(loop));
    EXPECT_TRUE(inner_store->isInside(func));
    EXPECT_FALSE(loop->isInside(if_op));
    EXPECT_EQ(inner_store->parentOp(), if_op);
    EXPECT_EQ(if_op->parentOp(), loop);
    EXPECT_EQ(loop->parentOp(), func);
    EXPECT_EQ(func->parentOp(), nullptr);
}

TEST(ModuleTest, LookupFunc)
{
    Module m = parseModule(R"(
func.func @one() {}
func.func @two() {})");
    EXPECT_NE(m.lookupFunc("one"), nullptr);
    EXPECT_NE(m.lookupFunc("two"), nullptr);
    EXPECT_EQ(m.lookupFunc("three"), nullptr);
    EXPECT_EQ(m.firstFunc(), m.lookupFunc("one"));
}

} // namespace
} // namespace seer::ir
