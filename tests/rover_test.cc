/** ROVER rule-set and cost-model tests, including the Figure 9 stories. */
#include <gtest/gtest.h>

#include "egraph/runner.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "seerlang/encoding.h"
#include "support/error.h"
#include "rover/rover.h"
#include "support/rng.h"

namespace seer::rover {
namespace {

using namespace eg;

EGraph
makeEGraph()
{
    return EGraph(roverAnalysisHooks());
}

RunnerReport
saturate(EGraph &egraph, RunnerOptions options = {})
{
    Runner runner(egraph, options);
    runner.addRules(roverRules());
    return runner.run();
}

TEST(RoverRulesTest, RuleCountMatchesPaperScale)
{
    // The paper quotes 106 datapath + gate-level rewrites; our
    // per-bitwidth instantiation is in the same regime.
    auto rules = roverRules();
    EXPECT_GE(rules.size(), 106u);
    EXPECT_LE(rules.size(), 400u);
}

TEST(RoverRulesTest, Figure9ShiftAddBecomesMulThree)
{
    // (i << 1) + i must reach 3 * i (affine recovery).
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(parseTerm(
        "(arith.addi:index (arith.shli:index var:i const:1:index) "
        "var:i)"));
    saturate(egraph);
    auto target = egraph.lookupTerm(
        parseTerm("(arith.muli:index var:i const:3:index)"));
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(egraph.find(*target), egraph.find(root));
}

TEST(RoverRulesTest, Figure9ReverseDirection)
{
    // 3 * i must reach (i << 1) + i (hardware-efficient form).
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(
        parseTerm("(arith.muli:i32 var:i const:3:i32)"));
    saturate(egraph);
    auto target = egraph.lookupTerm(parseTerm(
        "(arith.addi:i32 (arith.shli:i32 var:i const:1:i32) var:i)"));
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(egraph.find(*target), egraph.find(root));
}

TEST(RoverRulesTest, ConstantFoldingThroughAnalysis)
{
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(parseTerm(
        "(arith.addi:i32 const:20:i32 const:22:i32)"));
    egraph.rebuild();
    EXPECT_EQ(egraph.constantOf(root), 42);
}

TEST(RoverRulesTest, FoldingWrapsToWidth)
{
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(parseTerm(
        "(arith.addi:i8 const:127:i8 const:1:i8)"));
    egraph.rebuild();
    EXPECT_EQ(egraph.constantOf(root), -128);
}

TEST(RoverRulesTest, MulByPowerOfTwoMeetsShift)
{
    EGraph egraph = makeEGraph();
    EClassId mul = egraph.addTerm(
        parseTerm("(arith.muli:i32 var:x const:8:i32)"));
    saturate(egraph);
    auto shift = egraph.lookupTerm(
        parseTerm("(arith.shli:i32 var:x const:3:i32)"));
    ASSERT_TRUE(shift.has_value());
    EXPECT_EQ(egraph.find(*shift), egraph.find(mul));
}

TEST(RoverRulesTest, XorSelfIsZero)
{
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(
        parseTerm("(arith.xori:i32 var:a var:a)"));
    saturate(egraph);
    EXPECT_EQ(egraph.constantOf(root), 0);
}

TEST(RoverRulesTest, MuxSharing)
{
    // c ? (b + d) : (e + d) reaches (c ? b : e) + d.
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(parseTerm(
        "(arith.select:i32 var:c (arith.addi:i32 var:b var:d) "
        "(arith.addi:i32 var:e var:d))"));
    saturate(egraph);
    auto target = egraph.lookupTerm(parseTerm(
        "(arith.addi:i32 (arith.select:i32 var:c var:b var:e) var:d)"));
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(egraph.find(*target), egraph.find(root));
}

TEST(RoverRulesTest, GateLevelDeMorgan)
{
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(parseTerm(
        "(arith.andi:i1 (arith.xori:i1 var:a const:1:i1) "
        "(arith.xori:i1 var:b const:1:i1))"));
    saturate(egraph);
    auto target = egraph.lookupTerm(parseTerm(
        "(arith.xori:i1 (arith.ori:i1 var:a var:b) const:1:i1)"));
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(egraph.find(*target), egraph.find(root));
}

TEST(RoverRulesTest, RulesAreSoundOnRandomInputs)
{
    // Property test: for each syntactic rule over i32/i8, evaluate both
    // sides on random assignments and compare (width-wrapped).
    auto rules = roverRules();
    Rng rng(2024);

    // Tiny term evaluator over the SeerLang symbol encoding.
    std::function<std::optional<int64_t>(
        const PatternPtr &, const std::map<std::string, int64_t> &,
        unsigned &)>
        eval = [&](const PatternPtr &p,
                   const std::map<std::string, int64_t> &env,
                   unsigned &width) -> std::optional<int64_t> {
        if (p->isVar()) {
            auto it = env.find(p->var().str());
            if (it == env.end())
                return std::nullopt;
            return it->second;
        }
        std::string name = sl::opNameOf(p->op());
        if (auto c = sl::decodeIntConst(p->op())) {
            width = std::max(width, c->second.bitwidth());
            return c->first;
        }
        auto fields = sl::fieldsOf(p->op());
        std::vector<int64_t> args;
        for (const auto &child : p->children()) {
            auto v = eval(child, env, width);
            if (!v)
                return std::nullopt;
            args.push_back(*v);
        }
        unsigned w = 64;
        if (!fields.empty()) {
            try {
                ir::Type t = ir::parseType(fields.back());
                if (t.isScalar())
                    w = t.bitwidth();
            } catch (const FatalError &) {
                return std::nullopt;
            }
        }
        width = std::max(width, w);
        int64_t r;
        if (name == "arith.addi" && args.size() == 2) {
            r = args[0] + args[1];
        } else if (name == "arith.subi" && args.size() == 2) {
            r = args[0] - args[1];
        } else if (name == "arith.muli" && args.size() == 2) {
            r = args[0] * args[1];
        } else if (name == "arith.andi" && args.size() == 2) {
            r = args[0] & args[1];
        } else if (name == "arith.ori" && args.size() == 2) {
            r = args[0] | args[1];
        } else if (name == "arith.xori" && args.size() == 2) {
            r = args[0] ^ args[1];
        } else if (name == "arith.shli" && args.size() == 2) {
            if (args[1] < 0 || args[1] >= 64)
                return std::nullopt;
            r = static_cast<int64_t>(static_cast<uint64_t>(args[0])
                                     << args[1]);
        } else if (name == "arith.select" && args.size() == 3) {
            r = args[0] ? args[1] : args[2];
        } else {
            return std::nullopt;
        }
        return ir::wrapToWidth(r, w);
    };

    size_t checked = 0;
    for (const Rewrite &rule : rules) {
        if (!rule.rhs)
            continue;
        auto vars = rule.lhs->variables();
        bool all_ok = true;
        for (int trial = 0; trial < 24 && all_ok; ++trial) {
            std::map<std::string, int64_t> env;
            for (Symbol var : vars)
                env[var.str()] = rng.nextRange(-5, 5);
            unsigned wl = 1, wr = 1;
            auto lhs = eval(rule.lhs, env, wl);
            auto rhs = eval(rule.rhs, env, wr);
            if (!lhs || !rhs)
                break; // rule uses ops outside the evaluator
            unsigned w = std::min(wl, wr);
            EXPECT_EQ(ir::wrapToWidth(*lhs, w), ir::wrapToWidth(*rhs, w))
                << "unsound rule " << rule.name << " with env seed "
                << trial;
            if (ir::wrapToWidth(*lhs, w) != ir::wrapToWidth(*rhs, w))
                all_ok = false;
            ++checked;
        }
    }
    EXPECT_GT(checked, 1000u); // the evaluator must cover most rules
}

TEST(RoverCostTest, ShiftAddCheaperThanMul)
{
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(
        parseTerm("(arith.muli:i32 var:i const:3:i32)"));
    saturate(egraph);
    RoverAreaCost cost(&egraph);
    auto extraction = extractGreedy(egraph, root, cost);
    ASSERT_TRUE(extraction.has_value());
    // The winner must be the shift-add form (shift free, add 5.5*32).
    EXPECT_NE(extraction->term->str().find("arith.shli"),
              std::string::npos);
    EXPECT_LT(extraction->tree_cost, 1.9 * 32 * 32);
}

TEST(RoverCostTest, AnalysisFriendlyPrefersMulForm)
{
    EGraph egraph = makeEGraph();
    EClassId root = egraph.addTerm(parseTerm(
        "(arith.addi:index (arith.shli:index var:i const:1:index) "
        "var:i)"));
    saturate(egraph);
    AnalysisFriendlyCost cost;
    auto extraction = extractGreedy(egraph, root, cost);
    ASSERT_TRUE(extraction.has_value());
    EXPECT_EQ(extraction->term->str(),
              "(arith.muli:index var:i const:3:index)");
}

TEST(RoverCostTest, VariableShiftCostsBarrel)
{
    EGraph egraph = makeEGraph();
    EClassId var_shift = egraph.addTerm(
        parseTerm("(arith.shli:i32 var:a var:b)"));
    EClassId const_shift = egraph.addTerm(
        parseTerm("(arith.shli:i32 var:a const:3:i32)"));
    egraph.rebuild();
    RoverAreaCost cost(&egraph);
    const auto &vs_node = egraph.eclass(var_shift).nodes[0];
    const auto &cs_node = egraph.eclass(const_shift).nodes[0];
    EXPECT_GT(cost.nodeCost(vs_node), 100.0);
    EXPECT_EQ(cost.nodeCost(cs_node), 0.0);
}

TEST(RoverCostTest, FloatUnitsDominate)
{
    RoverAreaCost cost;
    eg::ENode addf{Symbol("arith.addf:f64"), {0, 1}};
    eg::ENode addi{Symbol("arith.addi:i32"), {0, 1}};
    EXPECT_GT(cost.nodeCost(addf), 10 * cost.nodeCost(addi));
}

} // namespace
} // namespace seer::rover
