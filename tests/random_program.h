/**
 * @file
 * Compatibility alias for the random program generator.
 *
 * The generator moved to src/corpus/generator.h so the corpus-scale
 * differential harness (`seer-corpus`) and the property tests share one
 * implementation. Tests keep using the historical seer::testing API;
 * seeds generate byte-identical programs to the pre-move generator.
 */
#ifndef SEER_TESTS_RANDOM_PROGRAM_H_
#define SEER_TESTS_RANDOM_PROGRAM_H_

#include <string>

#include "corpus/generator.h"

namespace seer::testing {

using GeneratorOptions = corpus::GeneratorOptions;

class RandomProgram
{
  public:
    RandomProgram(uint64_t seed, GeneratorOptions options = {})
        : seed_(seed), options_(options)
    {}

    /** Generate the textual IR of one random function @fuzz. */
    std::string
    generate()
    {
        return corpus::generateProgram(seed_, options_);
    }

  private:
    uint64_t seed_;
    GeneratorOptions options_;
};

} // namespace seer::testing

#endif // SEER_TESTS_RANDOM_PROGRAM_H_
