/**
 * @file
 * A generator of random structured programs for property testing.
 *
 * Programs are built from the same material as the benchmarks — affine
 * loops with (possibly shifted) affine accesses, guarded stores,
 * bounded whiles over scalar cells, and random arithmetic — with the
 * invariants the interpreter enforces kept by construction: indices in
 * bounds, no division, bounded iteration.
 */
#ifndef SEER_TESTS_RANDOM_PROGRAM_H_
#define SEER_TESTS_RANDOM_PROGRAM_H_

#include <sstream>
#include <string>
#include <vector>

#include "support/rng.h"

namespace seer::testing {

/** Shape knobs for the generator. */
struct GeneratorOptions
{
    int num_buffers = 3;       ///< memref<24xi32> arguments
    int max_top_statements = 4;
    int max_loop_body = 3;
    int max_expr_depth = 3;
    bool allow_if = true;
    bool allow_while = true;
    bool allow_nonaffine_index = true; ///< (i<<1)+i style accesses
};

class RandomProgram
{
  public:
    RandomProgram(uint64_t seed, GeneratorOptions options = {})
        : rng_(seed), options_(options)
    {}

    /** Generate the textual IR of one random function @fuzz. */
    std::string
    generate()
    {
        os_.str("");
        names_ = 0;
        os_ << "func.func @fuzz(";
        for (int b = 0; b < options_.num_buffers; ++b) {
            os_ << (b ? ", " : "") << "%buf" << b << ": memref<24xi32>";
        }
        os_ << ", %cell: memref<1xi32>) {\n";
        indent_ = 1;
        line("%zero = arith.constant 0 : i32");
        line("%one = arith.constant 1 : i32");
        line("%c0 = arith.constant 0 : index");
        int statements =
            1 + static_cast<int>(rng_.nextBelow(
                    static_cast<uint64_t>(options_.max_top_statements)));
        for (int s = 0; s < statements; ++s)
            emitTopStatement();
        os_ << "}\n";
        return os_.str();
    }

  private:
    std::string
    fresh(const char *base)
    {
        return std::string("%") + base + std::to_string(names_++);
    }

    void
    line(const std::string &text)
    {
        for (int i = 0; i < indent_; ++i)
            os_ << "  ";
        os_ << text << "\n";
    }

    std::string
    randomBuffer()
    {
        return "%buf" + std::to_string(
                            rng_.nextBelow(static_cast<uint64_t>(
                                options_.num_buffers)));
    }

    /** An in-bounds index expression over iv `iv` (or constant). */
    std::string
    emitIndex(const std::string &iv)
    {
        // Loops run 0..16; buffers hold 24 elements.
        uint64_t kind = rng_.nextBelow(
            options_.allow_nonaffine_index && !iv.empty() ? 4 : 3);
        if (iv.empty() || kind == 0) {
            std::string name = fresh("ci");
            line(name + " = arith.constant " +
                 std::to_string(rng_.nextBelow(16)) + " : index");
            return name;
        }
        if (kind == 1)
            return iv;
        if (kind == 2) {
            // iv + c, c in [0, 8): max 15 + 7 = 22 < 24.
            std::string c = fresh("ci");
            line(c + " = arith.constant " +
                 std::to_string(rng_.nextBelow(8)) + " : index");
            std::string sum = fresh("ix");
            line(sum + " = arith.addi " + iv + ", " + c + " : index");
            return sum;
        }
        // Non-affine in the polyhedral sense: (iv & 7) + c.
        std::string mask = fresh("ci");
        line(mask + " = arith.constant 7 : index");
        std::string masked = fresh("ix");
        line(masked + " = arith.andi " + iv + ", " + mask + " : index");
        std::string c = fresh("ci");
        line(c + " = arith.constant " +
             std::to_string(rng_.nextBelow(16)) + " : index");
        std::string sum = fresh("ix");
        line(sum + " = arith.addi " + masked + ", " + c + " : index");
        return sum;
    }

    /** A random i32 expression; may load from buffers. */
    std::string
    emitExpr(const std::string &iv, int depth)
    {
        uint64_t kind = rng_.nextBelow(depth <= 0 ? 3 : 8);
        if (kind == 0) {
            std::string c = fresh("k");
            line(c + " = arith.constant " +
                 std::to_string(rng_.nextRange(-20, 20)) + " : i32");
            return c;
        }
        if (kind == 1 || kind == 2) {
            std::string index = emitIndex(iv);
            std::string value = fresh("v");
            line(value + " = memref.load " + randomBuffer() + "[" +
                 index + "] : memref<24xi32>");
            return value;
        }
        if (kind == 7) {
            // select(cmp(a, b), a, b)
            std::string a = emitExpr(iv, depth - 1);
            std::string b = emitExpr(iv, depth - 1);
            std::string cond = fresh("c");
            const char *preds[] = {"slt", "sle", "eq", "ne", "sgt"};
            line(cond + " = arith.cmpi " +
                 preds[rng_.nextBelow(5)] + ", " + a + ", " + b +
                 " : i32");
            std::string sel = fresh("s");
            line(sel + " = arith.select " + cond + ", " + a + ", " + b +
                 " : i32");
            return sel;
        }
        const char *ops[] = {"addi", "subi", "muli", "andi", "ori",
                             "xori"};
        std::string a = emitExpr(iv, depth - 1);
        std::string b;
        if (rng_.nextBelow(5) == 0) {
            // Shift by a small constant.
            std::string amount = fresh("k");
            line(amount + " = arith.constant " +
                 std::to_string(rng_.nextBelow(4)) + " : i32");
            std::string shifted = fresh("e");
            line(shifted + " = arith.shli " + a + ", " + amount +
                 " : i32");
            return shifted;
        }
        b = emitExpr(iv, depth - 1);
        std::string result = fresh("e");
        line(result + " = arith." + ops[rng_.nextBelow(6)] + " " + a +
             ", " + b + " : i32");
        return result;
    }

    void
    emitStore(const std::string &iv)
    {
        std::string value = emitExpr(iv, options_.max_expr_depth);
        std::string index = emitIndex(iv);
        line("memref.store " + value + ", " + randomBuffer() + "[" +
             index + "] : memref<24xi32>");
    }

    void
    emitIf(const std::string &iv)
    {
        std::string a = emitExpr(iv, 1);
        std::string cond = fresh("c");
        line(cond + " = arith.cmpi sgt, " + a + ", %zero : i32");
        line("scf.if " + cond + " {");
        ++indent_;
        emitStore(iv);
        --indent_;
        if (rng_.nextBelow(2) == 0) {
            line("} else {");
            ++indent_;
            emitStore(iv);
            --indent_;
        }
        line("}");
    }

    void
    emitLoop()
    {
        std::string iv = fresh("i").substr(1); // strip %
        int64_t trip = 4 + static_cast<int64_t>(rng_.nextBelow(13));
        line("affine.for %" + iv + " = 0 to " + std::to_string(trip) +
             " {");
        ++indent_;
        int body = 1 + static_cast<int>(rng_.nextBelow(
                           static_cast<uint64_t>(options_.max_loop_body)));
        for (int s = 0; s < body; ++s) {
            uint64_t kind =
                rng_.nextBelow(options_.allow_if ? 3 : 2);
            if (kind == 2)
                emitIf("%" + iv);
            else
                emitStore("%" + iv);
        }
        --indent_;
        line("}");
    }

    void
    emitWhile()
    {
        // cell counts up to a bound; body also does a random store.
        int64_t bound = 3 + static_cast<int64_t>(rng_.nextBelow(8));
        std::string limit = fresh("k");
        line(limit + " = arith.constant " + std::to_string(bound) +
             " : i32");
        line("memref.store %zero, %cell[%c0] : memref<1xi32>");
        line("scf.while {");
        ++indent_;
        std::string v = fresh("w");
        line(v + " = memref.load %cell[%c0] : memref<1xi32>");
        std::string cond = fresh("c");
        line(cond + " = arith.cmpi slt, " + v + ", " + limit + " : i32");
        line("scf.condition " + cond);
        --indent_;
        line("} do {");
        ++indent_;
        emitStore("");
        std::string v2 = fresh("w");
        line(v2 + " = memref.load %cell[%c0] : memref<1xi32>");
        std::string inc = fresh("w");
        line(inc + " = arith.addi " + v2 + ", %one : i32");
        line("memref.store " + inc + ", %cell[%c0] : memref<1xi32>");
        --indent_;
        line("}");
    }

    void
    emitTopStatement()
    {
        uint64_t kind = rng_.nextBelow(10);
        if (kind < 6) {
            emitLoop();
        } else if (kind < 8 && options_.allow_while) {
            emitWhile();
        } else {
            emitStore("");
        }
    }

    Rng rng_;
    GeneratorOptions options_;
    std::ostringstream os_;
    int names_ = 0;
    int indent_ = 1;
};

} // namespace seer::testing

#endif // SEER_TESTS_RANDOM_PROGRAM_H_
