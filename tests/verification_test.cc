/**
 * @file
 * Verification-flow tests: the translation validator must catch unsound
 * rewrites injected into the exploration (Section 4.7's motivation —
 * "these passes may be unverified and could introduce non-equivalent
 * representations"), and must certify sound runs.
 */
#include <gtest/gtest.h>

#include "core/verify.h"
#include "egraph/runner.h"
#include "ir/parser.h"
#include "rover/rover.h"

namespace seer::core {
namespace {

using eg::EGraph;
using eg::makeRewrite;
using eg::parseTerm;
using eg::Runner;
using eg::RunnerReport;

TEST(UnsoundRuleTest, ValidatorCatchesWrongArithmetic)
{
    // Deliberately wrong: a + b -> a - b.
    EGraph egraph(rover::roverAnalysisHooks());
    egraph.addTerm(
        parseTerm("(arith.addi:i32 arg:x:i32 arg:y:i32)"));
    Runner runner(egraph);
    runner.addRule(makeRewrite("bogus-add-sub",
                               "(arith.addi:i32 ?a ?b)",
                               "(arith.subi:i32 ?a ?b)"));
    RunnerReport report = runner.run();
    ASSERT_GE(report.records.size(), 1u);

    VerifyReport verification = verifyRecords(report.records);
    EXPECT_FALSE(verification.ok());
    ASSERT_FALSE(verification.failures.empty());
    EXPECT_NE(verification.failures[0].find("bogus-add-sub"),
              std::string::npos);
}

TEST(UnsoundRuleTest, ValidatorCatchesWidthIgnorantRule)
{
    // x * 2 -> x << 2 (wrong shift amount).
    EGraph egraph(rover::roverAnalysisHooks());
    egraph.addTerm(
        parseTerm("(arith.muli:i32 arg:x:i32 const:2:i32)"));
    Runner runner(egraph);
    runner.addRule(makeRewrite("bogus-mul-shift",
                               "(arith.muli:i32 ?a const:2:i32)",
                               "(arith.shli:i32 ?a const:2:i32)"));
    RunnerReport report = runner.run();
    VerifyReport verification = verifyRecords(report.records);
    EXPECT_FALSE(verification.ok());
}

TEST(UnsoundRuleTest, ValidatorCatchesWrongStatementRewrite)
{
    // A "memory forwarding" that forwards the wrong value.
    EGraph egraph(rover::roverAnalysisHooks());
    egraph.addTerm(parseTerm(
        "(seq (memref.store:t80001 arg:v:i32 arg:m:memref<4xi32> "
        "const:0:index) (memref.store:t80002 arg:w:i32 "
        "arg:m:memref<4xi32> const:1:index))"));
    Runner runner(egraph);
    runner.addRule(makeRewrite(
        "bogus-forward",
        "(seq (memref.store:t80001 ?v ?m const:0:index) "
        "(memref.store:t80002 ?w ?m const:1:index))",
        "(seq (memref.store:t80003 ?v ?m const:0:index) "
        "(memref.store:t80004 ?v ?m const:1:index))"));
    RunnerReport report = runner.run();
    ASSERT_GE(report.records.size(), 1u);
    VerifyReport verification = verifyRecords(report.records);
    EXPECT_FALSE(verification.ok());
}

TEST(SoundRuleTest, SoundRunsProduceCleanCertificates)
{
    EGraph egraph(rover::roverAnalysisHooks());
    egraph.addTerm(parseTerm(
        "(arith.addi:i32 (arith.muli:i32 arg:x:i32 const:12:i32) "
        "arg:y:i32)"));
    eg::RunnerOptions options;
    options.max_iters = 4;
    Runner runner(egraph, options);
    runner.addRules(rover::roverRules());
    RunnerReport report = runner.run();
    ASSERT_GT(report.records.size(), 5u);
    VerifyOptions verify_options;
    verify_options.runs = 3;
    VerifyReport verification =
        verifyRecords(report.records, verify_options);
    EXPECT_TRUE(verification.ok())
        << (verification.failures.empty() ? std::string()
                                          : verification.failures[0]);
    EXPECT_EQ(verification.passed + verification.inconclusive,
              verification.total_checks);
}

TEST(DeadlineTest, ExpiredDeadlineIsInconclusiveNotFail)
{
    // Two genuinely different modules: a conclusive check would FAIL.
    // With an already-expired deadline the interpreter cancels
    // (ir::InterpError, TrapKind::Deadline) before any run finishes,
    // and the check must report the documented inconclusive
    // acceptance — never a spurious failure, never a thrown error.
    ir::Module lhs = ir::parseModule(R"(
func.func @f(%a: memref<8xi32>) {
  %c0 = arith.constant 0 : index
  %k = arith.constant 1 : i32
  memref.store %k, %a[%c0] : memref<8xi32>
  func.return
})");
    ir::Module rhs = ir::parseModule(R"(
func.func @f(%a: memref<8xi32>) {
  %c0 = arith.constant 0 : index
  %k = arith.constant 2 : i32
  memref.store %k, %a[%c0] : memref<8xi32>
  func.return
})");
    VerifyOptions expired;
    expired.exec = ExecContext::make();
    expired.exec.setDeadline(std::chrono::steady_clock::now());
    std::string diagnostic;
    EXPECT_TRUE(
        checkModuleEquivalence(lhs, rhs, "f", expired, &diagnostic));
    EXPECT_EQ(diagnostic, "<inconclusive>");

    // Sanity: without the deadline the same pair fails conclusively.
    std::string diff;
    EXPECT_FALSE(checkModuleEquivalence(lhs, rhs, "f", {}, &diff));
}

TEST(CertificateTest, RecordsCoverTheExtractionPath)
{
    // Every union is recorded, so the record set is a superset of any
    // path the extraction actually used: check all records reference
    // registered rule names.
    EGraph egraph(rover::roverAnalysisHooks());
    egraph.addTerm(
        parseTerm("(arith.muli:i32 arg:x:i32 const:10:i32)"));
    Runner runner(egraph);
    auto rules = rover::roverRules();
    std::set<std::string> names;
    for (const auto &rule : rules)
        names.insert(rule.name);
    runner.addRules(std::move(rules));
    RunnerReport report = runner.run();
    for (const auto &record : report.records)
        EXPECT_TRUE(names.count(record.rule)) << record.rule;
}

} // namespace
} // namespace seer::core
