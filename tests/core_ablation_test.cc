/**
 * @file
 * Ablations of SEER's design choices (the DESIGN.md list): laws vs
 * oracle, exact vs greedy datapath extraction, phases, and threading —
 * all configurations must stay semantics-preserving, and the documented
 * orderings must hold.
 */
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.h"
#include "core/seer.h"
#include "core/verify.h"
#include "hls/hls.h"
#include "ir/parser.h"
#include "ir/printer.h"

namespace seer::core {
namespace {

using namespace ir;

SeerResult
run(const bench::Benchmark &benchmark, SeerOptions options)
{
    Module input = bench::parseBenchmark(benchmark);
    options.unroll_max_trip = benchmark.unroll_max_trip;
    return optimize(input, benchmark.func, options);
}

void
expectEquivalentToSource(const bench::Benchmark &benchmark,
                         const SeerResult &result)
{
    Module input = bench::parseBenchmark(benchmark);
    std::string diag;
    EXPECT_TRUE(checkModuleEquivalence(input, result.module,
                                       benchmark.func,
                                       benchmark.prepare, {}, &diag))
        << diag;
}

TEST(AblationTest, OracleModeMatchesLawsSemantics)
{
    const bench::Benchmark &benchmark =
        bench::findBenchmark("seq_loops");
    SeerOptions laws;
    SeerOptions oracle;
    oracle.use_laws = false;
    SeerResult with_laws = run(benchmark, laws);
    SeerResult with_oracle = run(benchmark, oracle);
    expectEquivalentToSource(benchmark, with_laws);
    expectEquivalentToSource(benchmark, with_oracle);
    // Both must find the fused form on seq_loops.
    auto loops_of = [](const Module &m) {
        size_t n = 0;
        walk(m, [&](Operation &op) {
            if (isa(op, opnames::kAffineFor))
                ++n;
        });
        return n;
    };
    EXPECT_EQ(loops_of(with_laws.module), 1u);
    EXPECT_EQ(loops_of(with_oracle.module), 1u);
}

TEST(AblationTest, GreedyDatapathNeverBeatsExactOnArea)
{
    for (const char *name : {"seq_loops", "gemm_ncubed"}) {
        const bench::Benchmark &benchmark = bench::findBenchmark(name);
        SeerOptions exact;
        SeerOptions greedy;
        greedy.exact_datapath = false;
        SeerResult exact_result = run(benchmark, exact);
        SeerResult greedy_result = run(benchmark, greedy);
        expectEquivalentToSource(benchmark, exact_result);
        expectEquivalentToSource(benchmark, greedy_result);
        double exact_area =
            hls::estimateArea(exact_result.module, benchmark.func);
        double greedy_area =
            hls::estimateArea(greedy_result.module, benchmark.func);
        // Exact extraction optimizes the DAG; it must not lose by more
        // than rounding effects of emission CSE.
        EXPECT_LE(exact_area, greedy_area * 1.02) << name;
    }
}

TEST(AblationTest, SinglePhaseWeakerOrEqual)
{
    // One phase cannot interleave control and datapath discoveries, so
    // on the Figure 9 kernel it must not beat the multi-phase run.
    const bench::Benchmark &benchmark =
        bench::findBenchmark("seq_loops");
    SeerOptions one_phase;
    one_phase.max_phases = 1;
    SeerOptions full;
    SeerResult single = run(benchmark, one_phase);
    SeerResult multi = run(benchmark, full);
    expectEquivalentToSource(benchmark, single);
    auto cycles_of = [&](const SeerResult &result) {
        Module m = cloneModule(result.module);
        std::vector<Buffer> buffers =
            bench::makeBuffers(m, benchmark.func);
        Rng rng(3);
        benchmark.prepare(buffers, rng);
        std::vector<RtValue> args;
        for (auto &buffer : buffers)
            args.push_back(&buffer);
        hls::HlsOptions options;
        options.schedule.pipeline_loops = true;
        return hls::evaluate(m, benchmark.func, std::move(args),
                             options)
            .total_cycles;
    };
    EXPECT_LE(cycles_of(multi), cycles_of(single));
}

TEST(AblationTest, ThreadedRunIsDeterministic)
{
    const bench::Benchmark &benchmark =
        bench::findBenchmark("seq_loops");
    SeerOptions serial;
    SeerOptions threaded;
    threaded.runner.match_jobs = 4;
    SeerResult a = run(benchmark, serial);
    SeerResult b = run(benchmark, threaded);
    // Identical exploration -> identical extraction (modulo fresh tag
    // numbering, which printing normalizes away in op counts).
    EXPECT_EQ(a.stats.egraph_nodes, b.stats.egraph_nodes);
    EXPECT_EQ(a.stats.egraph_classes, b.stats.egraph_classes);
    EXPECT_EQ(countOps(a.module), countOps(b.module));
}

TEST(AblationTest, RecordsDisabledStillOptimizes)
{
    const bench::Benchmark &benchmark =
        bench::findBenchmark("seq_loops");
    SeerOptions options;
    options.runner.record_proofs = false;
    SeerResult result = run(benchmark, options);
    expectEquivalentToSource(benchmark, result);
    EXPECT_TRUE(result.stats.records.empty());
}

} // namespace
} // namespace seer::core
