/** HLS model tests: scheduling constraints, co-simulated cycles, PPA. */
#include <gtest/gtest.h>

#include "hls/hls.h"
#include "hls/pragmas.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace seer::hls {
namespace {

using namespace ir;

const char *kElementwise = R"(
func.func @f(%a: memref<100xi32>, %b: memref<100xi32>) {
  affine.for %i = 0 to 100 {
    %v = memref.load %a[%i] : memref<100xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%i] : memref<100xi32>
  }
})";

HlsReport
evalText(const char *text, bool pipeline)
{
    Module m = parseModule(text);
    verifyOrDie(m);
    Operation *func = m.firstFunc();
    Block &body = func->region(0).block();
    std::vector<std::unique_ptr<Buffer>> buffers;
    std::vector<RtValue> args;
    for (size_t i = 0; i < body.numArgs(); ++i) {
        buffers.push_back(
            std::make_unique<Buffer>(body.arg(i).type()));
        args.push_back(buffers.back().get());
    }
    HlsOptions options;
    options.schedule.pipeline_loops = pipeline;
    return evaluate(m, func->strAttr("sym_name"), std::move(args),
                    options);
}

TEST(HlsScheduleTest, ElementwiseLoopPipelinesAtIIOne)
{
    Module m = parseModule(kElementwise);
    HlsOptions options;
    options.schedule.pipeline_loops = true;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    ASSERT_EQ(schedule.loops.size(), 1u);
    const LoopConstraints &lc = schedule.loops.begin()->second;
    EXPECT_TRUE(lc.pipelined);
    EXPECT_EQ(lc.ii, 1);
    EXPECT_GE(lc.latency, 2);
    ASSERT_TRUE(lc.trip.has_value());
    EXPECT_EQ(*lc.trip, 100);
    // A: one access to each of two arrays.
    EXPECT_EQ(lc.accesses.size(), 2u);
}

TEST(HlsScheduleTest, BaselineDoesNotPipeline)
{
    Module m = parseModule(kElementwise);
    HlsOptions options;
    options.schedule.pipeline_loops = false;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    const LoopConstraints &lc = schedule.loops.begin()->second;
    EXPECT_FALSE(lc.pipelined);
    EXPECT_EQ(lc.ii, lc.latency);
}

TEST(HlsScheduleTest, SinglePortBoundsII)
{
    // Two reads of the same array per iteration: II >= 2.
    const char *text = R"(
func.func @f(%a: memref<100xi32>, %b: memref<100xi32>) {
  %c1 = arith.constant 1 : index
  affine.for %i = 1 to 99 {
    %v = memref.load %a[%i] : memref<100xi32>
    %im = arith.subi %i, %c1 : index
    %u = memref.load %a[%im] : memref<100xi32>
    %w = arith.addi %v, %u : i32
    memref.store %w, %b[%i] : memref<100xi32>
  }
})";
    Module m = parseModule(text);
    HlsOptions options;
    options.schedule.pipeline_loops = true;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    const LoopConstraints &lc = schedule.loops.begin()->second;
    EXPECT_TRUE(lc.pipelined);
    EXPECT_EQ(lc.ii, 2);
}

TEST(HlsScheduleTest, ScalarRecurrenceBlocksPipelining)
{
    // The byte_enable pattern: read-modify-write of one cell.
    const char *text = R"(
func.func @f(%a: memref<100xi32>, %s: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 100 {
    %acc = memref.load %s[%z] : memref<1xi32>
    %v = memref.load %a[%i] : memref<100xi32>
    %n = arith.addi %acc, %v : i32
    memref.store %n, %s[%z] : memref<1xi32>
  }
})";
    Module m = parseModule(text);
    HlsOptions options;
    options.schedule.pipeline_loops = true;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    const LoopConstraints &lc = schedule.loops.begin()->second;
    // Distance-1 recurrence spanning the body: II grows toward l.
    EXPECT_GT(lc.ii, 1);
}

TEST(HlsScheduleTest, OuterLoopWithInnerLoopNotPipelined)
{
    const char *text = R"(
func.func @f(%a: memref<8x8xi32>) {
  affine.for %i = 0 to 8 {
    affine.for %j = 0 to 8 {
      %v = memref.load %a[%i, %j] : memref<8x8xi32>
      memref.store %v, %a[%i, %j] : memref<8x8xi32>
    }
  }
})";
    Module m = parseModule(text);
    HlsOptions options;
    options.schedule.pipeline_loops = true;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    ASSERT_EQ(schedule.loops.size(), 2u);
    int pipelined = 0;
    for (const auto &[op, lc] : schedule.loops)
        pipelined += lc.pipelined ? 1 : 0;
    EXPECT_EQ(pipelined, 1); // only the inner loop
}

TEST(HlsScheduleTest, MultiCycleDividerStretchesLatency)
{
    const char *add_only = R"(
func.func @f(%a: memref<16xi32>) {
  affine.for %i = 0 to 16 {
    %v = memref.load %a[%i] : memref<16xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %a[%i] : memref<16xi32>
  }
})";
    const char *with_div = R"(
func.func @f(%a: memref<16xi32>) {
  %c3 = arith.constant 3 : i32
  affine.for %i = 0 to 16 {
    %v = memref.load %a[%i] : memref<16xi32>
    %w = arith.divsi %v, %c3 : i32
    memref.store %w, %a[%i] : memref<16xi32>
  }
})";
    HlsOptions options;
    Module m1 = parseModule(add_only);
    Module m2 = parseModule(with_div);
    auto l1 = scheduleOnly(m1, "f", options).loops.begin()->second;
    auto l2 = scheduleOnly(m2, "f", options).loops.begin()->second;
    EXPECT_GT(l2.latency, l1.latency + 4);
}

TEST(HlsScheduleTest, OverrideReplacesDerivedConstraints)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<100xi32>) {
  affine.for %i = 0 to 100 {
    %v = memref.load %a[%i] : memref<100xi32>
    memref.store %v, %a[%i] : memref<100xi32>
  }
})");
    // Attach a loop id, then override.
    walk(*m.firstFunc(), [](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            op.setAttr("seer.loop_id", Attribute("L99"));
    });
    HlsOptions options;
    options.schedule.pipeline_loops = false;
    LoopOverride ov;
    ov.ii = 3;
    ov.latency = 9;
    ov.pipelined = true;
    options.schedule.overrides["L99"] = ov;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    const LoopConstraints &lc = schedule.loops.begin()->second;
    EXPECT_EQ(lc.ii, 3);
    EXPECT_EQ(lc.latency, 9);
    EXPECT_TRUE(lc.pipelined);
}

TEST(HlsEvaluateTest, PipeliningCutsCyclesAndAddsArea)
{
    HlsReport base = evalText(kElementwise, /*pipeline=*/false);
    HlsReport piped = evalText(kElementwise, /*pipeline=*/true);
    EXPECT_LT(piped.total_cycles, base.total_cycles / 2);
    EXPECT_GT(piped.area_um2, base.area_um2);
    EXPECT_GT(base.total_cycles, 100u); // at least l per iteration
    EXPECT_GT(piped.power_mw, base.power_mw); // busier datapath
}

TEST(HlsEvaluateTest, CyclesFollowTheLatencyLaw)
{
    HlsReport piped = evalText(kElementwise, /*pipeline=*/true);
    ASSERT_EQ(piped.loops.size(), 1u);
    const LoopReport &lr = piped.loops.begin()->second;
    // (N-1)*P + l plus small fixed overhead outside the loop.
    uint64_t law = (lr.iterations - 1) * lr.constraints.ii +
                   lr.constraints.latency;
    EXPECT_GE(piped.total_cycles, law);
    EXPECT_LE(piped.total_cycles, law + 8);
}

TEST(HlsEvaluateTest, CriticalPathReflectsOperatorMix)
{
    const char *mul_chain = R"(
func.func @f(%a: memref<16xi32>) {
  affine.for %i = 0 to 16 {
    %v = memref.load %a[%i] : memref<16xi32>
    %w = arith.muli %v, %v : i32
    memref.store %w, %a[%i] : memref<16xi32>
  }
})";
    HlsReport with_mul = evalText(mul_chain, true);
    HlsReport add_only = evalText(kElementwise, true);
    EXPECT_GT(with_mul.critical_path_ns, add_only.critical_path_ns);
    // i32 multiplier: 0.30 + 0.027*32 = 1.164ns, chained as a long path.
    EXPECT_NEAR(with_mul.critical_path_ns, 1.164, 0.2);
}

TEST(HlsEvaluateTest, WhileLoopCostedDynamically)
{
    const char *text = R"(
func.func @f(%s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %limit = arith.constant 50 : i32
  %one = arith.constant 1 : i32
  scf.while {
    %v = memref.load %s[%z] : memref<1xi32>
    %cond = arith.cmpi slt, %v, %limit : i32
    scf.condition %cond
  } do {
    %v = memref.load %s[%z] : memref<1xi32>
    %n = arith.addi %v, %one : i32
    memref.store %n, %s[%z] : memref<1xi32>
  }
})";
    HlsReport report = evalText(text, false);
    // 50 iterations, each costing cond+body cycles.
    EXPECT_GT(report.total_cycles, 100u);
    EXPECT_LT(report.total_cycles, 1000u);
}

TEST(HlsEvaluateTest, MemoryDominatesAreaForLargeArrays)
{
    const char *big = R"(
func.func @f(%a: memref<4096xi32>) {
  affine.for %i = 0 to 4096 {
    %v = memref.load %a[%i] : memref<4096xi32>
    memref.store %v, %a[%i] : memref<4096xi32>
  }
})";
    HlsReport report = evalText(big, false);
    // 4096 * 32 bits * 0.65 ~ 85k um^2 floor.
    EXPECT_GT(report.area_um2, 80000.0);
}

TEST(HlsPragmaTest, CoalesceFlattensAndTrusts)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<16x16xi32>) {
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %v = memref.load %a[%i, %j] : memref<16x16xi32>
      %w = arith.addi %v, %v : i32
      memref.store %w, %a[%i, %j] : memref<16x16xi32>
    }
  }
})");
    applyPragmas(m);
    verifyOrDie(m);
    size_t loop_count = 0;
    bool trusted = false;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor)) {
            ++loop_count;
            trusted |= op.hasAttr("seer.coalesced");
            EXPECT_TRUE(op.hasAttr("seer.pipeline"));
        }
    });
    EXPECT_EQ(loop_count, 1u);
    EXPECT_TRUE(trusted);

    // The coalesced loop must pipeline at II bounded by ports only.
    HlsOptions options;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    const LoopConstraints &lc = schedule.loops.begin()->second;
    EXPECT_TRUE(lc.pipelined);
    EXPECT_EQ(lc.ii, 2); // load + store on the same array
    ASSERT_TRUE(lc.trip.has_value());
    EXPECT_EQ(*lc.trip, 256);
}

TEST(HlsPragmaTest, ReductionNestCoalescesWithCarriedMarker)
{
    // A scalar accumulation nest is a same-address reduction: coalesce
    // succeeds but the loop carries a distance-1 recurrence, so the
    // scheduler must bound II by the store-to-load span, not ports.
    Module m = parseModule(R"(
func.func @f(%a: memref<16x16xi32>, %s: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %acc = memref.load %s[%z] : memref<1xi32>
      %v = memref.load %a[%i, %j] : memref<16x16xi32>
      %n = arith.addi %acc, %v : i32
      memref.store %n, %s[%z] : memref<1xi32>
    }
  }
})");
    applyPragmas(m);
    verifyOrDie(m);
    size_t loop_count = 0;
    bool carried = false;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor)) {
            ++loop_count;
            carried |= op.hasAttr("seer.coalesced.carried");
        }
    });
    EXPECT_EQ(loop_count, 1u);
    EXPECT_TRUE(carried);
    HlsOptions options;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    const LoopConstraints &lc = schedule.loops.begin()->second;
    EXPECT_TRUE(lc.pipelined);
    EXPECT_GT(lc.ii, 1); // recurrence-bound, not just the two ports
}

TEST(HlsPragmaTest, CoalesceRefusedOnMismatchedAddresses)
{
    // Transposed store/load: address functions differ, coalescing is
    // genuinely unsafe and must be refused.
    Module m = parseModule(R"(
func.func @f(%a: memref<16x16xi32>) {
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      %v = memref.load %a[%i, %j] : memref<16x16xi32>
      memref.store %v, %a[%j, %i] : memref<16x16xi32>
    }
  }
})");
    PragmaOptions options;
    options.pipeline = false;
    applyPragmas(m, options);
    size_t loop_count = 0;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            ++loop_count;
    });
    EXPECT_EQ(loop_count, 2u); // untouched
}

TEST(HlsPragmaTest, ThreeLevelNestCoalesces)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<4x4x4xi32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 4 {
      affine.for %k = 0 to 4 {
        %v = memref.load %a[%i, %j, %k] : memref<4x4x4xi32>
        %w = arith.addi %v, %v : i32
        memref.store %w, %a[%i, %j, %k] : memref<4x4x4xi32>
      }
    }
  }
})");
    applyPragmas(m);
    verifyOrDie(m);
    size_t loop_count = 0;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            ++loop_count;
    });
    EXPECT_EQ(loop_count, 1u);
    HlsOptions options;
    FuncSchedule schedule = scheduleOnly(m, "f", options);
    EXPECT_EQ(*schedule.loops.begin()->second.trip, 64);
}

} // namespace
} // namespace seer::hls
