/**
 * @file
 * Property tests over random programs: every pass, the pragma flow and
 * the full SEER pipeline must preserve interpreter semantics; the
 * SeerLang round trip must be lossless; extraction must stay inside the
 * source e-class.
 */
#include <gtest/gtest.h>

#include "core/seer.h"
#include "core/verify.h"
#include "hls/pragmas.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "random_program.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"

namespace seer {
namespace {

using testing::GeneratorOptions;
using testing::RandomProgram;

class FuzzSeeds : public ::testing::TestWithParam<uint64_t>
{
};

ir::Module
generate(uint64_t seed, GeneratorOptions options = {})
{
    RandomProgram generator(seed, options);
    std::string source = generator.generate();
    ir::Module module = ir::parseModule(source);
    ir::verifyOrDie(module);
    return module;
}

TEST_P(FuzzSeeds, EveryPassPreservesSemantics)
{
    ir::Module input = generate(GetParam());
    for (const std::string &name : passes::allPassNames()) {
        ir::Module transformed = ir::cloneModule(input);
        bool changed = false;
        try {
            changed =
                passes::createPass(name)->run(*transformed.firstFunc());
        } catch (const FatalError &err) {
            FAIL() << "pass " << name << " threw: " << err.what();
        }
        std::string diag = ir::verify(transformed);
        ASSERT_EQ(diag, "")
            << "pass " << name << " broke verification\n"
            << ir::toString(transformed);
        if (!changed)
            continue;
        std::string eq_diag;
        EXPECT_TRUE(core::checkModuleEquivalence(input, transformed,
                                                 "fuzz", {}, &eq_diag))
            << "pass " << name << " changed semantics: " << eq_diag
            << "\n--- input\n" << ir::toString(input) << "--- output\n"
            << ir::toString(transformed);
    }
}

TEST_P(FuzzSeeds, CanonicalizeAndCleanupPreserveSemantics)
{
    ir::Module input = generate(GetParam());
    ir::Module transformed = ir::cloneModule(input);
    passes::canonicalize(*transformed.firstFunc());
    ASSERT_EQ(ir::verify(transformed), "")
        << ir::toString(transformed);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, transformed, "fuzz",
                                             {}, &diag))
        << diag << "\n" << ir::toString(transformed);
}

TEST_P(FuzzSeeds, SeerLangRoundTripIsLossless)
{
    ir::Module input = generate(GetParam());
    sl::Translation translation = sl::funcToTerm(*input.firstFunc());
    sl::EmitSpec spec{translation.func_name, translation.args};
    ir::Module emitted = sl::termToFunc(translation.term, spec);
    ASSERT_EQ(ir::verify(emitted), "") << ir::toString(emitted);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, emitted, "fuzz", {},
                                             &diag))
        << diag << "\nterm: " << translation.term->str();
}

TEST_P(FuzzSeeds, PragmaFlowPreservesSemantics)
{
    ir::Module input = generate(GetParam());
    ir::Module transformed = ir::cloneModule(input);
    hls::applyPragmas(transformed);
    ASSERT_EQ(ir::verify(transformed), "")
        << ir::toString(transformed);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, transformed, "fuzz",
                                             {}, &diag))
        << diag << "\n" << ir::toString(transformed);
}

INSTANTIATE_TEST_SUITE_P(Passes, FuzzSeeds,
                         ::testing::Range<uint64_t>(1, 33));

class SeerFuzzSeeds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeerFuzzSeeds, FullSeerPipelinePreservesSemantics)
{
    ir::Module input = generate(GetParam());
    core::SeerOptions options;
    options.runner.max_nodes = 12000; // keep the fuzz fast
    options.unroll_max_trip = GetParam() % 3 == 0 ? 8 : 0;
    core::SeerResult result;
    try {
        result = core::optimize(input, "fuzz", options);
    } catch (const FatalError &err) {
        FAIL() << "optimize threw: " << err.what() << "\n"
               << ir::toString(input);
    }
    ASSERT_EQ(ir::verify(result.module), "")
        << ir::toString(result.module);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, result.module,
                                             "fuzz", {}, &diag))
        << diag << "\n--- input\n" << ir::toString(input)
        << "--- output\n" << ir::toString(result.module);

    // Every applied rewrite must also validate individually.
    core::VerifyOptions verify_options;
    verify_options.runs = 2;
    core::VerifyReport report =
        core::verifyRecords(result.stats.records, verify_options);
    EXPECT_TRUE(report.ok())
        << (report.failures.empty() ? std::string()
                                    : report.failures[0]);
}

INSTANTIATE_TEST_SUITE_P(Seer, SeerFuzzSeeds,
                         ::testing::Range<uint64_t>(100, 112));

TEST_P(FuzzSeeds, PrintParseIsFixpoint)
{
    RandomProgram generator(GetParam());
    ir::Module first = ir::parseModule(generator.generate());
    std::string once = ir::toString(first);
    ir::Module second = ir::parseModule(once);
    EXPECT_EQ(ir::toString(second), once);
}

TEST(FuzzGeneratorTest, ProducesParseableVariety)
{
    // The generator itself must produce verifying programs across
    // shapes, including the degenerate-options corners.
    GeneratorOptions no_control;
    no_control.allow_if = false;
    no_control.allow_while = false;
    for (uint64_t seed = 500; seed < 520; ++seed) {
        EXPECT_NO_THROW(generate(seed));
        EXPECT_NO_THROW(generate(seed, no_control));
    }
}

} // namespace
} // namespace seer
