/**
 * @file
 * Property tests over random programs: every pass, the pragma flow and
 * the full SEER pipeline must preserve interpreter semantics; the
 * SeerLang round trip must be lossless; extraction must stay inside the
 * source e-class.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <typeinfo>

#include "core/seer.h"
#include "core/verify.h"
#include "hls/pragmas.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "random_program.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"

namespace seer {
namespace {

using testing::GeneratorOptions;
using testing::RandomProgram;

class FuzzSeeds : public ::testing::TestWithParam<uint64_t>
{
};

ir::Module
generate(uint64_t seed, GeneratorOptions options = {})
{
    RandomProgram generator(seed, options);
    std::string source = generator.generate();
    ir::Module module = ir::parseModule(source);
    ir::verifyOrDie(module);
    return module;
}

TEST_P(FuzzSeeds, EveryPassPreservesSemantics)
{
    ir::Module input = generate(GetParam());
    for (const std::string &name : passes::allPassNames()) {
        ir::Module transformed = ir::cloneModule(input);
        bool changed = false;
        try {
            changed =
                passes::createPass(name)->run(*transformed.firstFunc());
        } catch (const FatalError &err) {
            FAIL() << "pass " << name << " threw: " << err.what();
        }
        std::string diag = ir::verify(transformed);
        ASSERT_EQ(diag, "")
            << "pass " << name << " broke verification\n"
            << ir::toString(transformed);
        if (!changed)
            continue;
        std::string eq_diag;
        EXPECT_TRUE(core::checkModuleEquivalence(input, transformed,
                                                 "fuzz", {}, &eq_diag))
            << "pass " << name << " changed semantics: " << eq_diag
            << "\n--- input\n" << ir::toString(input) << "--- output\n"
            << ir::toString(transformed);
    }
}

TEST_P(FuzzSeeds, CanonicalizeAndCleanupPreserveSemantics)
{
    ir::Module input = generate(GetParam());
    ir::Module transformed = ir::cloneModule(input);
    passes::canonicalize(*transformed.firstFunc());
    ASSERT_EQ(ir::verify(transformed), "")
        << ir::toString(transformed);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, transformed, "fuzz",
                                             {}, &diag))
        << diag << "\n" << ir::toString(transformed);
}

TEST_P(FuzzSeeds, SeerLangRoundTripIsLossless)
{
    ir::Module input = generate(GetParam());
    sl::Translation translation = sl::funcToTerm(*input.firstFunc());
    sl::EmitSpec spec{translation.func_name, translation.args};
    ir::Module emitted = sl::termToFunc(translation.term, spec);
    ASSERT_EQ(ir::verify(emitted), "") << ir::toString(emitted);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, emitted, "fuzz", {},
                                             &diag))
        << diag << "\nterm: " << translation.term->str();
}

TEST_P(FuzzSeeds, PragmaFlowPreservesSemantics)
{
    ir::Module input = generate(GetParam());
    ir::Module transformed = ir::cloneModule(input);
    hls::applyPragmas(transformed);
    ASSERT_EQ(ir::verify(transformed), "")
        << ir::toString(transformed);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, transformed, "fuzz",
                                             {}, &diag))
        << diag << "\n" << ir::toString(transformed);
}

INSTANTIATE_TEST_SUITE_P(Passes, FuzzSeeds,
                         ::testing::Range<uint64_t>(1, 33));

class SeerFuzzSeeds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeerFuzzSeeds, FullSeerPipelinePreservesSemantics)
{
    ir::Module input = generate(GetParam());
    core::SeerOptions options;
    options.runner.max_nodes = 12000; // keep the fuzz fast
    options.unroll_max_trip = GetParam() % 3 == 0 ? 8 : 0;
    core::SeerResult result;
    try {
        result = core::optimize(input, "fuzz", options);
    } catch (const FatalError &err) {
        FAIL() << "optimize threw: " << err.what() << "\n"
               << ir::toString(input);
    }
    ASSERT_EQ(ir::verify(result.module), "")
        << ir::toString(result.module);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, result.module,
                                             "fuzz", {}, &diag))
        << diag << "\n--- input\n" << ir::toString(input)
        << "--- output\n" << ir::toString(result.module);

    // Every applied rewrite must also validate individually.
    core::VerifyOptions verify_options;
    verify_options.runs = 2;
    core::VerifyReport report =
        core::verifyRecords(result.stats.records, verify_options);
    EXPECT_TRUE(report.ok())
        << (report.failures.empty() ? std::string()
                                    : report.failures[0]);
}

INSTANTIATE_TEST_SUITE_P(Seer, SeerFuzzSeeds,
                         ::testing::Range<uint64_t>(100, 112));

TEST_P(FuzzSeeds, PrintParseIsFixpoint)
{
    RandomProgram generator(GetParam());
    ir::Module first = ir::parseModule(generator.generate());
    std::string once = ir::toString(first);
    ir::Module second = ir::parseModule(once);
    EXPECT_EQ(ir::toString(second), once);
}

// --- Malformed-input fuzzing (PR 2) -----------------------------------
//
// The parser must reject arbitrary corruption with FatalError — never a
// crash, a foreign exception type (std::out_of_range from number
// conversion), or UB. Each round takes a valid generated program and
// applies random byte- and token-level mutations.

/** SplitMix64: deterministic mutation stream. */
uint64_t
nextRand(uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/** Parse arbitrary text: OK if it parses+verifies or raises FatalError;
 *  anything else (other exception, crash) fails the test. */
void
expectGracefulParse(const std::string &text)
{
    try {
        ir::Module module = ir::parseModule(text);
        ir::verifyOrDie(module);
    } catch (const FatalError &) {
        // rejected cleanly: fine
    } catch (const std::exception &err) {
        FAIL() << "non-FatalError exception "
               << typeid(err).name() << ": " << err.what()
               << "\n--- input\n" << text;
    }
}

class MalformedFuzzSeeds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MalformedFuzzSeeds, ByteMutationsNeverCrashTheParser)
{
    uint64_t rng = GetParam() * 0xA076'1D64'78BD'642FULL + 1;
    RandomProgram generator(GetParam());
    std::string base = generator.generate();
    for (int round = 0; round < 40; ++round) {
        std::string text = base;
        int edits = 1 + static_cast<int>(nextRand(rng) % 4);
        for (int e = 0; e < edits && !text.empty(); ++e) {
            size_t pos = nextRand(rng) % text.size();
            switch (nextRand(rng) % 3) {
            case 0: // flip to a random printable-or-not byte
                text[pos] = static_cast<char>(nextRand(rng) % 256);
                break;
            case 1: // delete
                text.erase(pos, 1 + nextRand(rng) % 5);
                break;
            case 2: // duplicate a slice
                text.insert(pos,
                            text.substr(pos, 1 + nextRand(rng) % 8));
                break;
            }
        }
        expectGracefulParse(text);
    }
}

TEST_P(MalformedFuzzSeeds, TokenMutationsNeverCrashTheParser)
{
    // Token-level corruption reaches deeper than byte flips: swapping
    // and duplicating whitespace-delimited tokens produces structurally
    // plausible but ill-formed programs.
    uint64_t rng = GetParam() * 0x2545'F491'4F6C'DD1DULL + 1;
    RandomProgram generator(GetParam());
    std::string base = generator.generate();
    std::vector<std::string> tokens;
    std::stringstream stream(base);
    std::string token;
    while (stream >> token)
        tokens.push_back(token);
    ASSERT_GT(tokens.size(), 4u);
    for (int round = 0; round < 40; ++round) {
        std::vector<std::string> mutated = tokens;
        switch (nextRand(rng) % 4) {
        case 0:
            mutated.erase(mutated.begin() +
                          nextRand(rng) % mutated.size());
            break;
        case 1:
            std::swap(mutated[nextRand(rng) % mutated.size()],
                      mutated[nextRand(rng) % mutated.size()]);
            break;
        case 2:
            mutated.insert(mutated.begin() +
                               nextRand(rng) % mutated.size(),
                           mutated[nextRand(rng) % mutated.size()]);
            break;
        case 3:
            mutated[nextRand(rng) % mutated.size()] = "%";
            break;
        }
        std::string text;
        for (const std::string &t : mutated)
            text += t + " ";
        expectGracefulParse(text);
    }
}

TEST_P(MalformedFuzzSeeds, TruncationsNeverCrashTheParser)
{
    // Truncation at every prefix length exercises EOF-in-the-middle of
    // every token kind the program contains.
    RandomProgram generator(GetParam());
    std::string base = generator.generate();
    size_t step = std::max<size_t>(1, base.size() / 120);
    for (size_t len = 0; len < base.size(); len += step)
        expectGracefulParse(base.substr(0, len));
}

INSTANTIATE_TEST_SUITE_P(Parser, MalformedFuzzSeeds,
                         ::testing::Range<uint64_t>(1, 9));

TEST(MalformedInputTest, KnownEdgeCasesRaiseFatalError)
{
    // Hand-picked regressions: inputs that historically hit foreign
    // exception types or lexer corner cases.
    const char *cases[] = {
        // numeric literals out of range for stoll/stod
        "func.func @f() { %c = arith.constant "
        "99999999999999999999999999999999999 : i64 }",
        "func.func @f() { %c = arith.constant 1.0e99999 : i64 }",
        // integer width out of range for stoul
        "func.func @f(%a: i99999999999999999999) { }",
        // memref dimension out of range
        "func.func @f(%a: memref<99999999999999999999999xi32>) { }",
        // EOF mid-token
        "func.func @f() { %c = arith.cons",
        "func.func @f() { %c = arith.constant 4",
        "func.func @",
        "%",
        "func.func @f(%a: memref<",
        // unterminated comment at EOF
        "func.func @f() { } // trailing comment with no newline",
        "// only a comment",
        // stray bytes
        "\x01\x02\xff",
        "func.func @f() { \x7f }",
    };
    for (const char *text : cases)
        expectGracefulParse(text);
}

TEST(FuzzGeneratorTest, ProducesParseableVariety)
{
    // The generator itself must produce verifying programs across
    // shapes, including the degenerate-options corners.
    GeneratorOptions no_control;
    no_control.allow_if = false;
    no_control.allow_while = false;
    for (uint64_t seed = 500; seed < 520; ++seed) {
        EXPECT_NO_THROW(generate(seed));
        EXPECT_NO_THROW(generate(seed, no_control));
    }
}

} // namespace
} // namespace seer
