/**
 * Resource-governance and chaos-harness tests (the robustness PR's
 * no-throw contract): optimize() under any seeded fault plan or memory
 * budget must never propagate bad_alloc and must keep delivering
 * verifier-clean IR; cancellation reasons are reported honestly; the
 * pass-cache file survives torn writes; and the corpus chaos sweep
 * both passes on a clean pipeline and still catches a planted
 * miscompile.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pass_eval.h"
#include "core/seer.h"
#include "core/verify.h"
#include "corpus/oracle.h"
#include "corpus/runner.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/exec_context.h"
#include "support/fault_inject.h"

namespace seer {
namespace {

const char *kSmallKernel = R"(
func.func @k(%a: memref<16xi32>, %b: memref<16xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<16xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%i] : memref<16xi32>
  }
})";

/** Small, fast pipeline configuration for sweep tests. */
core::SeerOptions
sweepOptions()
{
    core::SeerOptions options;
    options.max_phases = 2;
    options.runner.max_iters = 2;
    return options;
}

// ---------------------------------------------------------------------
// Fault-plan plumbing
// ---------------------------------------------------------------------

TEST(FaultPlanTest, NamesRoundTripThroughTheParser)
{
    for (size_t i = 0; i < kNumFaultPoints; ++i) {
        FaultPoint point = static_cast<FaultPoint>(i);
        auto parsed = parseFaultPoint(faultPointName(point));
        ASSERT_TRUE(parsed.has_value()) << faultPointName(point);
        EXPECT_EQ(*parsed, point);
    }
    EXPECT_FALSE(parseFaultPoint("no-such-point").has_value());
}

TEST(FaultPlanTest, PlanTextRoundTrips)
{
    FaultPlan plan;
    plan.seed = 1234;
    plan.rate = 0.25;
    plan.fixed.push_back({FaultPoint::EGraphAlloc, 3});
    plan.fixed.push_back({FaultPoint::CacheRead, 1});
    auto parsed = FaultPlan::parse(plan.str());
    ASSERT_TRUE(parsed.has_value()) << plan.str();
    EXPECT_EQ(parsed->seed, plan.seed);
    EXPECT_DOUBLE_EQ(parsed->rate, plan.rate);
    ASSERT_EQ(parsed->fixed.size(), 2u);
    EXPECT_EQ(parsed->fixed[0].first, FaultPoint::EGraphAlloc);
    EXPECT_EQ(parsed->fixed[0].second, 3u);
    EXPECT_EQ(parsed->fixed[1].first, FaultPoint::CacheRead);
    EXPECT_EQ(parsed->fixed[1].second, 1u);

    EXPECT_FALSE(FaultPlan::parse("fixed=bogus@1").has_value());
    EXPECT_FALSE(FaultPlan::parse("rate=nope").has_value());
}

TEST(FaultPlanTest, SeededRateFiresDeterministically)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.rate = 0.5;
    std::string first, second;
    for (int round = 0; round < 2; ++round) {
        ScopedFaultPlan armed(plan);
        std::string &bits = round ? second : first;
        for (int i = 0; i < 64; ++i)
            bits += faultFire(FaultPoint::EGraphAlloc) ? '1' : '0';
    }
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find('1'), std::string::npos);
    EXPECT_NE(first.find('0'), std::string::npos);
}

// ---------------------------------------------------------------------
// The no-throw contract: optimize() under every injection point
// ---------------------------------------------------------------------

TEST(NoThrowContractTest, OptimizeSurvivesEveryInjectionPoint)
{
    // Fixpoint sweep: fire each point at several hit indices. Whatever
    // the schedule, optimize() must neither throw nor emit invalid IR.
    ir::Module input = ir::parseModule(kSmallKernel);
    for (size_t i = 0; i < kNumFaultPoints; ++i) {
        for (uint64_t nth : {1ull, 2ull, 8ull}) {
            FaultPlan plan;
            plan.fixed.push_back({static_cast<FaultPoint>(i), nth});
            ScopedFaultPlan armed(plan);
            core::SeerResult result;
            ASSERT_NO_THROW(result = core::optimize(input, "k",
                                                    sweepOptions()))
                << plan.str();
            EXPECT_EQ(ir::verify(result.module), "")
                << plan.str() << "\n" << ir::toString(result.module);
        }
    }
}

TEST(NoThrowContractTest, AllPointsAtOnceStillDelivers)
{
    ir::Module input = ir::parseModule(kSmallKernel);
    FaultPlan plan;
    for (size_t i = 0; i < kNumFaultPoints; ++i)
        plan.fixed.push_back({static_cast<FaultPoint>(i), 1});
    ScopedFaultPlan armed(plan);
    core::SeerResult result;
    ASSERT_NO_THROW(result = core::optimize(input, "k", sweepOptions()));
    EXPECT_EQ(ir::verify(result.module), "")
        << ir::toString(result.module);
    EXPECT_TRUE(result.stats.degraded);
}

TEST(NoThrowContractTest, RollbackMidPhaseFaultRollsThePhaseBack)
{
    ir::Module input = ir::parseModule(kSmallKernel);
    FaultPlan plan;
    plan.fixed.push_back({FaultPoint::RollbackMidPhase, 1});
    ScopedFaultPlan armed(plan);
    core::SeerResult result = core::optimize(input, "k", sweepOptions());
    EXPECT_TRUE(result.stats.degraded);
    EXPECT_GE(result.stats.phase_rollbacks, 1u);
    EXPECT_EQ(ir::verify(result.module), "");
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, result.module, "k",
                                             {}, &diag))
        << diag;
}

TEST(NoThrowContractTest, StrictModeStillPropagatesInjectedCrashes)
{
    ir::Module input = ir::parseModule(kSmallKernel);
    FaultPlan plan;
    plan.fixed.push_back({FaultPoint::RollbackMidPhase, 1});
    ScopedFaultPlan armed(plan);
    core::SeerOptions options = sweepOptions();
    options.strict = true;
    EXPECT_THROW(core::optimize(input, "k", options), FatalError);
}

// ---------------------------------------------------------------------
// Memory budget: breach degrades, never OOMs
// ---------------------------------------------------------------------

TEST(MemBudgetTest, TinyBudgetDegradesToVerifiedIr)
{
    ir::Module input = ir::parseModule(kSmallKernel);
    core::SeerOptions options = sweepOptions();
    options.mem_budget_bytes = 2 * 1024; // breaches almost immediately
    core::SeerResult result = core::optimize(input, "k", options);

    EXPECT_TRUE(result.stats.degraded);
    EXPECT_TRUE(result.stats.resource.breached);
    EXPECT_EQ(result.stats.cancel_reason, "mem_budget");
    EXPECT_EQ(result.stats.resource.budget_bytes, 2u * 1024);
    EXPECT_EQ(ir::verify(result.module), "")
        << ir::toString(result.module);
    std::string diag;
    EXPECT_TRUE(core::checkModuleEquivalence(input, result.module, "k",
                                             {}, &diag))
        << diag;

    // The breach reaches the --stats JSON resource section.
    std::string text = core::toJson(result.stats).dump();
    EXPECT_NE(text.find("\"resource\""), std::string::npos);
    EXPECT_NE(text.find("\"breached\": true"), std::string::npos);
}

TEST(MemBudgetTest, CleanRunAccountsPeakBytes)
{
    ir::Module input = ir::parseModule(kSmallKernel);
    core::SeerResult result =
        core::optimize(input, "k", sweepOptions());
    EXPECT_FALSE(result.stats.resource.breached);
    EXPECT_TRUE(result.stats.cancel_reason.empty());
    size_t egraph = static_cast<size_t>(MemSubsystem::EGraph);
    EXPECT_GT(result.stats.resource.sub[egraph].peak_bytes, 0u);
    EXPECT_GT(result.stats.resource.peak_bytes, 0u);
}

TEST(MemBudgetTest, PreCanceledContextShortCircuits)
{
    ir::Module input = ir::parseModule(kSmallKernel);
    core::SeerOptions options = sweepOptions();
    options.exec = ExecContext::make();
    options.exec.requestCancel(CancelReason::External);
    core::SeerResult result = core::optimize(input, "k", options);
    EXPECT_TRUE(result.stats.degraded);
    EXPECT_EQ(result.stats.cancel_reason, "external");
    EXPECT_EQ(ir::verify(result.module), "");
}

// ---------------------------------------------------------------------
// Torn pass-cache files
// ---------------------------------------------------------------------

/** Read a whole file (binary). */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

TEST(CachePersistenceTest, SaveIsAtomicUnderInjectedCrash)
{
    std::string path = "governance_cache_atomic.tmp.json";
    core::ExternalEvalCache cache;
    core::PassOutcome outcome;
    outcome.status = core::PassOutcome::Status::NotApplied;
    cache.insertPass(7, outcome);

    std::string error;
    ASSERT_TRUE(cache.saveFile(path, &error)) << error;
    std::string original = slurp(path);
    ASSERT_FALSE(original.empty());

    // A crash injected before the rename must leave the published file
    // untouched (no torn write) and report the failure.
    cache.insertPass(8, outcome);
    {
        FaultPlan plan;
        plan.fixed.push_back({FaultPoint::CacheSave, 1});
        ScopedFaultPlan armed(plan);
        EXPECT_FALSE(cache.saveFile(path, &error));
        EXPECT_FALSE(error.empty());
    }
    EXPECT_EQ(slurp(path), original);

    // Reloading the surviving file round-trips.
    core::ExternalEvalCache reload;
    EXPECT_EQ(reload.loadFile(path, &error), 1u) << error;
    std::remove(path.c_str());
}

TEST(CachePersistenceTest, TruncatedAndCorruptFilesAreRejectedWhole)
{
    std::string path = "governance_cache_torn.tmp.json";
    core::ExternalEvalCache cache;
    core::PassOutcome outcome;
    outcome.status = core::PassOutcome::Status::NotApplied;
    cache.insertPass(7, outcome);
    std::string error;
    ASSERT_TRUE(cache.saveFile(path, &error)) << error;
    std::string full = slurp(path);

    // Truncation (a torn write) fails the checksum: zero entries
    // adopted, not a prefix.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << full.substr(0, full.size() - 4);
    }
    core::ExternalEvalCache torn;
    error.clear();
    EXPECT_EQ(torn.loadFile(path, &error), 0u);
    EXPECT_FALSE(error.empty());

    // A flipped byte in the body fails the checksum too.
    std::string corrupt = full;
    corrupt[full.size() / 2] ^= 0x20;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << corrupt;
    }
    core::ExternalEvalCache flipped;
    error.clear();
    EXPECT_EQ(flipped.loadFile(path, &error), 0u);
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Chaos harness: the corpus oracle under randomized fault plans
// ---------------------------------------------------------------------

TEST(ChaosHarnessTest, ChaosSweepUpholdsTheDegradedModeContract)
{
    corpus::CorpusOptions options;
    options.first_seed = 1;
    options.count = 4;
    options.minimize = false;
    options.chaos = true;
    options.chaos_rate = 0.05;
    options.oracle.input_runs = 1;
    options.oracle.deadline_seconds = 60;
    options.oracle.seer.exact_datapath = false;
    corpus::CorpusReport report = corpus::runCorpus(options);
    EXPECT_EQ(report.total, 4u);
    EXPECT_EQ(report.failed, 0u) << corpus::toJson(report, options).dump();
}

TEST(ChaosHarnessTest, ChaosModeStillCatchesAPlantedMiscompile)
{
    // The chaos machinery must not mask real bugs: with the unsound
    // store-dropping rule planted, the sweep still fails the case.
    corpus::CorpusOptions options;
    options.first_seed = 6; // known to trigger the unsound rewrite
    options.count = 1;
    options.minimize = false;
    options.chaos = true;
    options.chaos_rate = 0; // plan machinery on, no fault noise
    options.oracle.input_runs = 1;
    options.oracle.deadline_seconds = 60;
    options.oracle.seer.exact_datapath = false;
    options.oracle.seer.extra_control_rules.push_back(
        corpus::makeUnsoundStoreDropRule());
    corpus::CorpusReport report = corpus::runCorpus(options);
    EXPECT_GE(report.failed, 1u);
}

} // namespace
} // namespace seer
