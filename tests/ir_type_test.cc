/** Tests for the IR type system and attributes. */
#include <gtest/gtest.h>

#include "ir/attribute.h"
#include "ir/parser.h"
#include "ir/type.h"
#include "support/error.h"

namespace seer::ir {
namespace {

TEST(TypeTest, IntegerBasics)
{
    Type t = Type::i32();
    EXPECT_TRUE(t.isInteger());
    EXPECT_EQ(t.bitwidth(), 32u);
    EXPECT_EQ(t.str(), "i32");
    EXPECT_EQ(Type::integer(7).str(), "i7");
}

TEST(TypeTest, IndexAndFloat)
{
    EXPECT_TRUE(Type::index().isIndex());
    EXPECT_EQ(Type::index().str(), "index");
    EXPECT_EQ(Type::index().bitwidth(), 64u);
    EXPECT_TRUE(Type::f64().isFloat());
    EXPECT_EQ(Type::f64().str(), "f64");
}

TEST(TypeTest, MemRefShapeAndElements)
{
    Type m = Type::memref({8, 8}, Type::i32());
    EXPECT_TRUE(m.isMemRef());
    EXPECT_EQ(m.shape(), (std::vector<int64_t>{8, 8}));
    EXPECT_EQ(m.elementType(), Type::i32());
    EXPECT_EQ(m.numElements(), 64);
    EXPECT_EQ(m.str(), "memref<8x8xi32>");
}

TEST(TypeTest, Equality)
{
    EXPECT_EQ(Type::i32(), Type::i32());
    EXPECT_NE(Type::i32(), Type::integer(31));
    EXPECT_NE(Type::i32(), Type::index());
    EXPECT_EQ(Type::memref({4}, Type::i1()), Type::memref({4}, Type::i1()));
    EXPECT_NE(Type::memref({4}, Type::i1()), Type::memref({5}, Type::i1()));
    EXPECT_NE(Type::memref({4}, Type::i1()),
              Type::memref({4}, Type::i32()));
}

TEST(TypeTest, ParseTypeSpellings)
{
    EXPECT_EQ(parseType("i17"), Type::integer(17));
    EXPECT_EQ(parseType("index"), Type::index());
    EXPECT_EQ(parseType("f64"), Type::f64());
    EXPECT_EQ(parseType("memref<100xi32>"),
              Type::memref({100}, Type::i32()));
    EXPECT_EQ(parseType("memref<2x3x4xf64>"),
              Type::memref({2, 3, 4}, Type::f64()));
    EXPECT_THROW(parseType("i32x"), FatalError);
    EXPECT_THROW(parseType("memref<xi32>"), FatalError);
}

TEST(TypeTest, RoundTripThroughStr)
{
    for (const char *spelling :
         {"i1", "i8", "i32", "i64", "index", "f64", "memref<16xi8>",
          "memref<4x4x4xi32>", "memref<7xf64>"}) {
        EXPECT_EQ(parseType(spelling).str(), spelling);
    }
}

TEST(TypeTest, InvalidConstructionsDie)
{
    EXPECT_DEATH(Type::integer(0), "bad integer width");
    EXPECT_DEATH(Type::integer(65), "bad integer width");
    EXPECT_DEATH(Type::memref({}, Type::i32()), "at least one");
    EXPECT_DEATH(Type::memref({-1}, Type::i32()), "positive");
    EXPECT_DEATH(Type::memref({4}, Type::memref({4}, Type::i32())),
                 "scalar");
}

TEST(AttributeTest, Variants)
{
    EXPECT_TRUE(Attribute().isNull());
    EXPECT_EQ(Attribute(int64_t{5}).asInt(), 5);
    EXPECT_EQ(Attribute(2.5).asFloat(), 2.5);
    EXPECT_EQ(Attribute("slt").asString(), "slt");
    EXPECT_EQ(Attribute(std::vector<int64_t>{1, 2}).asIntArray().size(),
              2u);
    EXPECT_EQ(Attribute(Type::i32()).asType(), Type::i32());
}

TEST(AttributeTest, StrRendering)
{
    EXPECT_EQ(Attribute(int64_t{-3}).str(), "-3");
    EXPECT_EQ(Attribute(1.0).str(), "1.0");
    EXPECT_EQ(Attribute("abc").str(), "\"abc\"");
    EXPECT_EQ(Attribute(std::vector<int64_t>{1, 2}).str(), "[1, 2]");
}

TEST(AttributeTest, Equality)
{
    EXPECT_EQ(Attribute(int64_t{5}), Attribute(int64_t{5}));
    EXPECT_FALSE(Attribute(int64_t{5}) == Attribute(int64_t{6}));
    EXPECT_FALSE(Attribute(int64_t{5}) == Attribute(5.0));
}

} // namespace
} // namespace seer::ir
