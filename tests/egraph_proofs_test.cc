/** Proof production, threaded matching, and extraction properties. */
#include <gtest/gtest.h>

#include <algorithm>

#include "egraph/extract.h"
#include "egraph/runner.h"
#include "rover/rover.h"
#include "support/rng.h"

namespace seer::eg {
namespace {

TEST(ExplainTest, DirectUnionHasOneStepPath)
{
    EGraph eg;
    EClassId a = eg.addTerm(parseTerm("(mul x const:2)"));
    EClassId b = eg.addTerm(parseTerm("(shl x const:1)"));
    eg.merge(a, b, "mul2-shl");
    eg.rebuild();
    auto path = eg.explain(a, b);
    ASSERT_TRUE(path.has_value());
    ASSERT_EQ(path->size(), 1u);
    EXPECT_EQ((*path)[0], "mul2-shl");
}

TEST(ExplainTest, ChainedUnionsConcatenate)
{
    EGraph eg;
    EClassId a = eg.addTerm(parseTerm("a"));
    EClassId b = eg.addTerm(parseTerm("b"));
    EClassId c = eg.addTerm(parseTerm("c"));
    eg.merge(a, b, "r1");
    eg.merge(b, c, "r2");
    eg.rebuild();
    auto path = eg.explain(a, c);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (std::vector<std::string>{"r1", "r2"}));
}

TEST(ExplainTest, SameIdIsEmptyPath)
{
    EGraph eg;
    EClassId a = eg.addTerm(parseTerm("a"));
    auto path = eg.explain(a, a);
    ASSERT_TRUE(path.has_value());
    EXPECT_TRUE(path->empty());
}

TEST(ExplainTest, DistinctClassesHaveNoExplanation)
{
    EGraph eg;
    EClassId a = eg.addTerm(parseTerm("a"));
    EClassId b = eg.addTerm(parseTerm("b"));
    EXPECT_FALSE(eg.explain(a, b).has_value());
}

TEST(ExplainTest, RunnerLabelsUnionsWithRuleNames)
{
    EGraph eg;
    EClassId root = eg.addTerm(parseTerm("(mul a const:2)"));
    EClassId target = eg.addTerm(parseTerm("(shl a const:1)"));
    Runner runner(eg);
    runner.addRule(
        makeRewrite("mul2-shl", "(mul ?a const:2)", "(shl ?a const:1)"));
    runner.run();
    auto path = eg.explain(root, target);
    ASSERT_TRUE(path.has_value());
    ASSERT_FALSE(path->empty());
    EXPECT_NE(std::find(path->begin(), path->end(), "mul2-shl"),
              path->end());
}

TEST(ExplainTest, MultiStepRewriteChain)
{
    // f(x) -> g(x) -> h(x) via two rules; the ids were added up front,
    // so the explanation between the endpoints names both rules.
    EGraph eg;
    EClassId f = eg.addTerm(parseTerm("(f x)"));
    EClassId h = eg.addTerm(parseTerm("(h x)"));
    Runner runner(eg);
    runner.addRule(makeRewrite("f-to-g", "(f ?a)", "(g ?a)"));
    runner.addRule(makeRewrite("g-to-h", "(g ?a)", "(h ?a)"));
    runner.run();
    ASSERT_EQ(eg.find(f), eg.find(h));
    auto path = eg.explain(f, h);
    ASSERT_TRUE(path.has_value());
    EXPECT_FALSE(path->empty());
    EXPECT_NE(std::find(path->begin(), path->end(), "g-to-h"),
              path->end());
    for (const std::string &step : *path)
        EXPECT_FALSE(step.empty());
}

TEST(ProofRecordTest, RecordsStayResolvableAfterHeavyMerging)
{
    // Saturate a graph that merges aggressively (commutativity +
    // associativity over a shared-subterm add tree), then check every
    // recorded union still references canonical classes: both recorded
    // ground terms resolve into the e-graph, land in the same class,
    // and explain() yields a justification path for them.
    EGraph eg;
    EClassId a = eg.addTerm(parseTerm("(add x y)"));
    EClassId b = eg.addTerm(parseTerm("(add y x)"));
    eg.addTerm(parseTerm("(add (add x y) (add (add x y) z))"));
    RunnerOptions options;
    options.max_iters = 4;
    options.max_nodes = 5000;
    Runner runner(eg, options);
    runner.addRule(makeRewrite("comm", "(add ?a ?b)", "(add ?b ?a)"));
    runner.addRule(makeRewrite("assoc", "(add (add ?a ?b) ?c)",
                               "(add ?a (add ?b ?c))"));
    RunnerReport report = runner.run();
    ASSERT_GE(report.records.size(), 5u);
    for (const RewriteRecord &record : report.records) {
        EXPECT_TRUE(record.rule == "comm" || record.rule == "assoc");
        auto lhs = eg.lookupTerm(record.lhs);
        auto rhs = eg.lookupTerm(record.rhs);
        ASSERT_TRUE(lhs.has_value()) << record.rule;
        ASSERT_TRUE(rhs.has_value()) << record.rule;
        EXPECT_EQ(eg.find(*lhs), eg.find(*rhs)) << record.rule;
        auto path = eg.explain(*lhs, *rhs);
        ASSERT_TRUE(path.has_value()) << record.rule;
    }
    // The pre-registered original ids survived the merge storm with a
    // non-trivial explanation chain between them.
    ASSERT_EQ(eg.find(a), eg.find(b));
    auto path = eg.explain(a, b);
    ASSERT_TRUE(path.has_value());
    EXPECT_FALSE(path->empty());
}

TEST(ThreadedMatchTest, SameExplorationAsSerial)
{
    auto run = [](unsigned threads) {
        EGraph eg(rover::roverAnalysisHooks());
        eg.addTerm(parseTerm(
            "(arith.addi:i32 (arith.muli:i32 var:a const:12:i32) "
            "(arith.muli:i32 var:b const:6:i32))"));
        RunnerOptions options;
        options.max_iters = 5;
        options.match_jobs = threads;
        options.record_proofs = false;
        Runner runner(eg, options);
        runner.addRules(rover::roverRules());
        RunnerReport report = runner.run();
        return std::tuple{eg.numNodes(), eg.numClasses(),
                          report.total_applied};
    };
    auto serial = run(1);
    auto threaded = run(4);
    EXPECT_EQ(serial, threaded);
}

TEST(ThreadedMatchTest, ThreadedRunStillSaturates)
{
    EGraph eg;
    EClassId root = eg.addTerm(parseTerm("(add x y)"));
    RunnerOptions options;
    options.match_jobs = 8;
    Runner runner(eg, options);
    runner.addRule(makeRewrite("comm", "(add ?a ?b)", "(add ?b ?a)"));
    RunnerReport report = runner.run();
    EXPECT_EQ(report.stop, StopReason::Saturated);
    EXPECT_EQ(eg.find(*eg.lookupTerm(parseTerm("(add y x)"))),
              eg.find(root));
}

// --- Extraction properties over randomized saturations ----------------

class ExtractionProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ExtractionProperty, ExtractedTermIsInRootClass)
{
    Rng rng(GetParam());
    // Random nested constant-multiply expression.
    std::function<std::string(int)> build = [&](int depth) {
        if (depth == 0)
            return std::string("var:x") +
                   std::to_string(rng.nextBelow(3));
        int64_t c = static_cast<int64_t>(rng.nextBelow(14)) + 2;
        uint64_t kind = rng.nextBelow(3);
        if (kind == 0) {
            return "(arith.muli:i32 " + build(depth - 1) + " const:" +
                   std::to_string(c) + ":i32)";
        }
        if (kind == 1) {
            return "(arith.addi:i32 " + build(depth - 1) + " " +
                   build(depth - 1) + ")";
        }
        return "(arith.xori:i32 " + build(depth - 1) + " " +
               build(depth - 1) + ")";
    };
    EGraph eg(rover::roverAnalysisHooks());
    EClassId root = eg.addTerm(parseTerm(build(3)));
    RunnerOptions options;
    options.max_iters = 4;
    options.max_nodes = 20000;
    options.record_proofs = false;
    Runner runner(eg, options);
    runner.addRules(rover::roverRules());
    runner.run();

    rover::RoverAreaCost area(&eg);
    auto greedy = extractGreedy(eg, root, area);
    ASSERT_TRUE(greedy.has_value());
    // Property 1: the extracted term is a member of the root class.
    auto found = eg.lookupTerm(greedy->term);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(eg.find(*found), eg.find(root));

    // Property 2: exact extraction never does worse on DAG cost.
    auto exact = extractExact(eg, root, area);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(exact->dag_cost, greedy->dag_cost + 1e-9);
    auto exact_found = eg.lookupTerm(exact->term);
    ASSERT_TRUE(exact_found.has_value());
    EXPECT_EQ(eg.find(*exact_found), eg.find(root));

    // Property 3: smallest-term extraction is also in class and no
    // larger than the greedy area term.
    TermPtr smallest = extractSmallest(eg, root);
    EXPECT_LE(smallest->size(), greedy->term->size());
    EXPECT_EQ(eg.find(*eg.lookupTerm(smallest)), eg.find(root));
}

INSTANTIATE_TEST_SUITE_P(Random, ExtractionProperty,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
} // namespace seer::eg
