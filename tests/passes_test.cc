/** Control-path pass tests: structure + interpreter-checked equivalence. */
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "support/rng.h"

namespace seer::passes {
namespace {

using namespace ir;

/** Fill buffers with deterministic pseudo-random data. */
void
seedBuffers(std::vector<Buffer> &buffers, uint64_t seed)
{
    Rng rng(seed);
    for (Buffer &buffer : buffers) {
        for (auto &v : buffer.ints)
            v = rng.nextRange(-100, 100);
        for (auto &v : buffer.floats)
            v = rng.nextDouble() * 10 - 5;
    }
}

/**
 * Interpret `module`'s first function with fresh buffers for each memref
 * argument; returns the final buffer contents (ints only concatenated).
 */
std::vector<int64_t>
runWithSeed(const Module &module, uint64_t seed)
{
    Operation *func = module.firstFunc();
    Block &body = func->region(0).block();
    std::vector<Buffer> buffers;
    buffers.reserve(body.numArgs());
    std::vector<RtValue> args;
    for (size_t i = 0; i < body.numArgs(); ++i) {
        Type t = body.arg(i).type();
        EXPECT_TRUE(t.isMemRef()) << "test functions take only memrefs";
        buffers.emplace_back(t);
    }
    seedBuffers(buffers, seed);
    for (Buffer &buffer : buffers)
        args.push_back(&buffer);
    interpret(module, func->strAttr("sym_name"), std::move(args));
    std::vector<int64_t> out;
    for (const Buffer &buffer : buffers) {
        out.insert(out.end(), buffer.ints.begin(), buffer.ints.end());
        for (double d : buffer.floats)
            out.push_back(static_cast<int64_t>(d * 4096));
    }
    return out;
}

/** Check sem. equivalence of two modules across several random seeds. */
void
expectEquivalent(const Module &a, const Module &b)
{
    for (uint64_t seed : {1u, 2u, 3u, 42u}) {
        EXPECT_EQ(runWithSeed(a, seed), runWithSeed(b, seed))
            << "modules diverge with seed " << seed << "\n--- before\n"
            << toString(a) << "--- after\n" << toString(b);
    }
}

/** Parse, transform with `fn`, verify, and check equivalence. */
Module
applyChecked(const std::string &text,
             const std::function<bool(Operation &)> &fn,
             bool expect_change = true)
{
    Module before = parseModule(text);
    verifyOrDie(before);
    Module after = cloneModule(before);
    bool changed = fn(*after.firstFunc());
    EXPECT_EQ(changed, expect_change) << toString(after);
    std::string diag = verify(after);
    EXPECT_EQ(diag, "") << toString(after);
    expectEquivalent(before, after);
    return after;
}

size_t
countLoops(const Module &m)
{
    size_t n = 0;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            ++n;
    });
    return n;
}

size_t
countOpsNamed(const Module &m, std::string_view name)
{
    size_t n = 0;
    walk(m, [&](Operation &op) {
        if (op.nameStr() == name)
            ++n;
    });
    return n;
}

// --- DCE / canonicalize -------------------------------------------------

TEST(CleanupTest, DceRemovesUnusedPureChains)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %c1 = arith.constant 1 : i32
  %c2 = arith.constant 2 : i32
  %dead = arith.addi %c1, %c2 : i32
  %dead2 = arith.muli %dead, %dead : i32
})",
                            [](Operation &f) { return runDce(f); });
    EXPECT_EQ(countOpsNamed(m, opnames::kAddI), 0u);
    EXPECT_EQ(countOpsNamed(m, opnames::kConstant), 0u);
}

TEST(CleanupTest, DceKeepsEffectfulOps)
{
    applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %i = arith.constant 0 : index
  %v = memref.load %a[%i] : memref<4xi32>
  memref.store %v, %a[%i] : memref<4xi32>
})",
                 [](Operation &f) { return runDce(f); },
                 /*expect_change=*/false);
}

TEST(CleanupTest, ConstantFoldingCollapsesArith)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %i = arith.constant 0 : index
  %c20 = arith.constant 20 : i32
  %c22 = arith.constant 22 : i32
  %sum = arith.addi %c20, %c22 : i32
  memref.store %sum, %a[%i] : memref<4xi32>
})",
                            [](Operation &f) { return canonicalize(f); });
    EXPECT_EQ(countOpsNamed(m, opnames::kAddI), 0u);
}

TEST(CleanupTest, IdentitiesSimplify)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %i = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %one = arith.constant 1 : i32
  %v = memref.load %a[%i] : memref<4xi32>
  %p = arith.addi %v, %zero : i32
  %q = arith.muli %p, %one : i32
  %r = arith.xori %q, %zero : i32
  memref.store %r, %a[%i] : memref<4xi32>
})",
                            [](Operation &f) { return canonicalize(f); });
    EXPECT_EQ(countOpsNamed(m, opnames::kAddI), 0u);
    EXPECT_EQ(countOpsNamed(m, opnames::kMulI), 0u);
    EXPECT_EQ(countOpsNamed(m, opnames::kXOrI), 0u);
}

TEST(CleanupTest, ConstantConditionIfInlined)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %i = arith.constant 0 : index
  %t = arith.constant 1 : i1
  %v = arith.constant 7 : i32
  scf.if %t {
    memref.store %v, %a[%i] : memref<4xi32>
  }
})",
                            [](Operation &f) { return canonicalize(f); });
    EXPECT_EQ(countOpsNamed(m, opnames::kIf), 0u);
    EXPECT_EQ(countOpsNamed(m, opnames::kStore), 1u);
}

TEST(CleanupTest, ZeroTripLoopRemoved)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  affine.for %i = 3 to 3 {
    %v = memref.load %a[%i] : memref<4xi32>
    memref.store %v, %a[%i] : memref<4xi32>
  }
})",
                            [](Operation &f) { return canonicalize(f); });
    EXPECT_EQ(countLoops(m), 0u);
}

TEST(CleanupTest, ConstantsHoistedAndDeduped)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %one = arith.constant 1 : i32
    %v = memref.load %a[%i] : memref<8xi32>
    %n = arith.addi %v, %one : i32
    memref.store %n, %a[%i] : memref<8xi32>
  }
  affine.for %j = 0 to 8 {
    %one = arith.constant 1 : i32
    %v = memref.load %a[%j] : memref<8xi32>
    %n = arith.addi %v, %one : i32
    memref.store %n, %a[%j] : memref<8xi32>
  }
})",
                            [](Operation &f) { return canonicalize(f); });
    EXPECT_EQ(countOpsNamed(m, opnames::kConstant), 1u);
    // After hoisting, the two loops are adjacent and can fuse.
    auto loops = topLevelLoops(m.firstFunc()->region(0).block());
    ASSERT_EQ(loops.size(), 2u);
    EXPECT_TRUE(fuseLoopPair(*loops[0], *loops[1]));
}

// --- Loop fusion ------------------------------------------------------

TEST(LoopFusionTest, FusesIndependentLoops)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<10xi32>, %b: memref<10xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<10xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %a[%i] : memref<10xi32>
  }
  affine.for %j = 0 to 10 {
    %v = memref.load %b[%j] : memref<10xi32>
    %w = arith.muli %v, %v : i32
    memref.store %w, %b[%j] : memref<10xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("loop-fusion");
                                return pass->run(f);
                            });
    EXPECT_EQ(countLoops(m), 1u);
}

TEST(LoopFusionTest, RespectsDependences)
{
    // Second loop reads x[j+1]: fusing would break; pass must refuse.
    applyChecked(R"(
func.func @f(%x: memref<16xi32>, %y: memref<10xi32>) {
  %c1 = arith.constant 1 : index
  affine.for %i = 0 to 10 {
    %v = memref.load %x[%i] : memref<16xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %x[%i] : memref<16xi32>
  }
  affine.for %j = 0 to 10 {
    %jp = arith.addi %j, %c1 : index
    %v = memref.load %x[%jp] : memref<16xi32>
    memref.store %v, %y[%j] : memref<10xi32>
  }
})",
                 [](Operation &f) {
                     auto pass = createPass("loop-fusion");
                     return pass->run(f);
                 },
                 /*expect_change=*/false);
}

TEST(LoopFusionTest, ChainOfThreeLoopsFullyFuses)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<10xi32>, %b: memref<10xi32>, %c: memref<10xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<10xi32>
    memref.store %v, %b[%i] : memref<10xi32>
  }
  affine.for %j = 0 to 10 {
    %v = memref.load %b[%j] : memref<10xi32>
    memref.store %v, %c[%j] : memref<10xi32>
  }
  affine.for %k = 0 to 10 {
    %v = memref.load %c[%k] : memref<10xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %c[%k] : memref<10xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("loop-fusion");
                                return pass->run(f);
                            });
    EXPECT_EQ(countLoops(m), 1u);
}

// --- Loop unroll ------------------------------------------------------

TEST(LoopUnrollTest, FullyUnrolls)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  affine.for %i = 0 to 4 {
    %v = memref.load %a[%i] : memref<4xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %a[%i] : memref<4xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("loop-unroll");
                                return pass->run(f);
                            });
    EXPECT_EQ(countLoops(m), 0u);
    EXPECT_EQ(countOpsNamed(m, opnames::kStore), 4u);
}

TEST(LoopUnrollTest, RespectsTripLimit)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<100xi32>) {
  affine.for %i = 0 to 100 {
    %v = memref.load %a[%i] : memref<100xi32>
    memref.store %v, %a[%i] : memref<100xi32>
  }
})");
    auto loops = topLevelLoops(m.firstFunc()->region(0).block());
    EXPECT_FALSE(unrollLoop(*loops[0], 64));
    EXPECT_TRUE(unrollLoop(*loops[0], 128));
}

TEST(LoopUnrollTest, NonConstantBoundsRefused)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<64xi32>) {
  affine.for %jj = 0 to 64 step 8 {
    affine.for %j = %jj to %jj + 8 {
      %v = memref.load %a[%j] : memref<64xi32>
      memref.store %v, %a[%j] : memref<64xi32>
    }
  }
})");
    std::vector<Operation *> loops;
    walk(*m.firstFunc(), [&](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            loops.push_back(&op);
    });
    EXPECT_FALSE(unrollLoop(*loops[1], 64)); // inner: dynamic bounds
}

TEST(LoopUnrollTest, UnrollWithStep)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 step 2 {
    %v = memref.load %a[%i] : memref<8xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %a[%i] : memref<8xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("loop-unroll");
                                return pass->run(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kStore), 4u);
}

// --- Interchange / flatten / perfection ---------------------------------

TEST(LoopInterchangeTest, SwapsRectangularNest)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4x6xi32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 6 {
      %v = memref.load %a[%i, %j] : memref<4x6xi32>
      %w = arith.addi %v, %v : i32
      memref.store %w, %a[%i, %j] : memref<4x6xi32>
    }
  }
})",
                            [](Operation &f) {
                                auto pass =
                                    createPass("loop-interchange");
                                return pass->run(f);
                            });
    auto loops = topLevelLoops(m.firstFunc()->region(0).block());
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(*constantTripCount(*loops[0]), 6); // was 4
}

TEST(LoopFlattenTest, FlattensPerfectNest)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4x6xi32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 6 {
      %v = memref.load %a[%i, %j] : memref<4x6xi32>
      %w = arith.addi %v, %v : i32
      memref.store %w, %a[%i, %j] : memref<4x6xi32>
    }
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("loop-flatten");
                                return pass->run(f);
                            });
    EXPECT_EQ(countLoops(m), 1u);
    auto loops = topLevelLoops(m.firstFunc()->region(0).block());
    EXPECT_EQ(*constantTripCount(*loops[0]), 24);
}

TEST(LoopFlattenTest, FlattensNonZeroBaseAndStep)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<12x16xi32>) {
  affine.for %i = 2 to 10 step 2 {
    affine.for %j = 1 to 16 step 3 {
      %v = memref.load %a[%i, %j] : memref<12x16xi32>
      %w = arith.addi %v, %v : i32
      memref.store %w, %a[%i, %j] : memref<12x16xi32>
    }
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("loop-flatten");
                                return pass->run(f);
                            });
    EXPECT_EQ(countLoops(m), 1u);
}

TEST(LoopPerfectionTest, PredicatesPreAndPost)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4x6xi32>, %s: memref<4xi32>) {
  %zero = arith.constant 0 : i32
  %one = arith.constant 1 : i32
  affine.for %i = 0 to 4 {
    memref.store %zero, %s[%i] : memref<4xi32>
    affine.for %j = 0 to 6 {
      %v = memref.load %a[%i, %j] : memref<4x6xi32>
      %w = arith.addi %v, %one : i32
      memref.store %w, %a[%i, %j] : memref<4x6xi32>
    }
    %r = memref.load %s[%i] : memref<4xi32>
    %r2 = arith.addi %r, %one : i32
    memref.store %r2, %s[%i] : memref<4xi32>
  }
})",
                            [](Operation &f) {
                                auto pass =
                                    createPass("loop-perfection");
                                return pass->run(f);
                            });
    // The nest is now perfect.
    auto loops = topLevelLoops(m.firstFunc()->region(0).block());
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_NE(perfectlyNestedInner(*loops[0]), nullptr);
}

TEST(LoopPerfectionTest, EnablesFlattening)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4x6xi32>, %s: memref<4xi32>) {
  %zero = arith.constant 0 : i32
  affine.for %i = 0 to 4 {
    memref.store %zero, %s[%i] : memref<4xi32>
    affine.for %j = 0 to 6 {
      %v = memref.load %a[%i, %j] : memref<4x6xi32>
      %w = arith.addi %v, %v : i32
      memref.store %w, %a[%i, %j] : memref<4x6xi32>
    }
  }
})",
                            [](Operation &f) {
                                bool c = createPass("loop-perfection")
                                             ->run(f);
                                c |= createPass("loop-flatten")->run(f);
                                return c;
                            });
    EXPECT_EQ(countLoops(m), 1u);
}

// --- If conversion ----------------------------------------------------

TEST(IfConversionTest, GuardedStoreBecomesSelect)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<8xi32>, %b: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %zero = arith.constant 0 : i32
    %c = arith.cmpi sgt, %v, %zero : i32
    scf.if %c {
      memref.store %v, %b[%i] : memref<8xi32>
    }
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("if-conversion");
                                return pass->run(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kIf), 0u);
    EXPECT_EQ(countOpsNamed(m, opnames::kSelect), 1u);
}

TEST(IfConversionTest, ValueIfBecomesSelect)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %zero = arith.constant 0 : i32
    %c = arith.cmpi slt, %v, %zero : i32
    %r = scf.if %c -> (i32) {
      %n = arith.subi %zero, %v : i32
      scf.yield %n : i32
    } else {
      scf.yield %v : i32
    }
    memref.store %r, %a[%i] : memref<8xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("if-conversion");
                                return pass->run(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kIf), 0u);
}

TEST(IfConversionTest, RefusesDivisionSpeculation)
{
    applyChecked(R"(
func.func @f(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %zero = arith.constant 0 : i32
    %c = arith.cmpi ne, %v, %zero : i32
    scf.if %c {
      %hundred = arith.constant 100 : i32
      %q = arith.divsi %hundred, %v : i32
      memref.store %q, %a[%i] : memref<8xi32>
    }
  }
})",
                 [](Operation &f) {
                     auto pass = createPass("if-conversion");
                     return pass->run(f);
                 },
                 /*expect_change=*/false);
}

TEST(IfConversionTest, RefusesUnprovenLoadBounds)
{
    // Load index depends on a loaded value: cannot prove in-bounds.
    applyChecked(R"(
func.func @f(%a: memref<8xi32>, %idx: memref<8xi32>) {
  %t = arith.constant 1 : i1
  affine.for %i = 0 to 8 {
    scf.if %t {
      %j = memref.load %idx[%i] : memref<8xi32>
      %j64 = arith.extsi %j : i32 to i64
      %ji = arith.index_cast %j64 : i64 to index
      %v = memref.load %a[%i] : memref<8xi32>
      memref.store %v, %a[%i] : memref<8xi32>
    }
  }
})",
                 [](Operation &f) {
                     // Note: the load %a[%i] is fine, but %idx[%i] feeds
                     // an index chain; the if also contains loads only —
                     // conversion applies to this one. Use cf check.
                     auto pass = createPass("if-conversion");
                     return pass->run(f);
                 },
                 /*expect_change=*/true);
}

// --- Memory forwarding ------------------------------------------------

TEST(MemoryForwardTest, StoreToLoadForwarding)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %i = arith.constant 0 : index
  %c7 = arith.constant 7 : i32
  memref.store %c7, %a[%i] : memref<4xi32>
  %v = memref.load %a[%i] : memref<4xi32>
  %w = arith.addi %v, %v : i32
  memref.store %w, %a[%i] : memref<4xi32>
})",
                            [](Operation &f) {
                                return forwardMemory(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kLoad), 0u);
}

TEST(MemoryForwardTest, RedundantLoadElimination)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>, %b: memref<4xi32>) {
  %i = arith.constant 0 : index
  %v1 = memref.load %a[%i] : memref<4xi32>
  %v2 = memref.load %a[%i] : memref<4xi32>
  %s = arith.addi %v1, %v2 : i32
  memref.store %s, %b[%i] : memref<4xi32>
})",
                            [](Operation &f) {
                                return forwardMemory(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kLoad), 1u);
}

TEST(MemoryForwardTest, DeadStoreElimination)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %i = arith.constant 0 : index
  %c1 = arith.constant 1 : i32
  %c2 = arith.constant 2 : i32
  memref.store %c1, %a[%i] : memref<4xi32>
  memref.store %c2, %a[%i] : memref<4xi32>
})",
                            [](Operation &f) {
                                return forwardMemory(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kStore), 1u);
}

TEST(MemoryForwardTest, InterveningAliasBlocksForwarding)
{
    // Store to a[%j] (unknown j) between store and load of a[%i].
    applyChecked(R"(
func.func @f(%a: memref<4xi32>, %jbuf: memref<1xi32>) {
  %z = arith.constant 0 : index
  %c7 = arith.constant 7 : i32
  %c3 = arith.constant 3 : i32
  %jv = memref.load %jbuf[%z] : memref<1xi32>
  %mask = arith.constant 3 : i32
  %jm = arith.andi %jv, %mask : i32
  %j64 = arith.extsi %jm : i32 to i64
  %j = arith.index_cast %j64 : i64 to index
  memref.store %c7, %a[%z] : memref<4xi32>
  memref.store %c3, %a[%j] : memref<4xi32>
  %v = memref.load %a[%z] : memref<4xi32>
  memref.store %v, %jbuf[%z] : memref<1xi32>
})",
                 [](Operation &f) { return forwardMemory(f); },
                 /*expect_change=*/false);
}

TEST(MemoryForwardTest, ProvablyDistinctAddressesForward)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %z = arith.constant 0 : index
  %one = arith.constant 1 : index
  %c7 = arith.constant 7 : i32
  %c3 = arith.constant 3 : i32
  memref.store %c7, %a[%z] : memref<4xi32>
  memref.store %c3, %a[%one] : memref<4xi32>
  %v = memref.load %a[%z] : memref<4xi32>
  %w = arith.addi %v, %c3 : i32
  memref.store %w, %a[%z] : memref<4xi32>
})",
                            [](Operation &f) {
                                return forwardMemory(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kLoad), 0u);
}

TEST(MemoryForwardTest, ControlFlowClearsKnowledge)
{
    applyChecked(R"(
func.func @f(%a: memref<4xi32>, %c: memref<1xi32>) {
  %z = arith.constant 0 : index
  %c7 = arith.constant 7 : i32
  memref.store %c7, %a[%z] : memref<4xi32>
  affine.for %i = 0 to 4 {
    %v = memref.load %a[%i] : memref<4xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %a[%i] : memref<4xi32>
  }
  %after = memref.load %a[%z] : memref<4xi32>
  memref.store %after, %c[%z] : memref<1xi32>
})",
                 [](Operation &f) { return forwardMemory(f); },
                 /*expect_change=*/false);
}

// --- If correlation -----------------------------------------------------

TEST(IfCorrelationTest, IdenticalConditionsMerge)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>, %b: memref<4xi32>) {
  %z = arith.constant 0 : index
  %one = arith.constant 1 : index
  %v = memref.load %a[%z] : memref<4xi32>
  %zero = arith.constant 0 : i32
  %c = arith.cmpi sgt, %v, %zero : i32
  scf.if %c {
    memref.store %v, %b[%z] : memref<4xi32>
  }
  scf.if %c {
    memref.store %v, %b[%one] : memref<4xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("if-correlation");
                                return pass->run(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kIf), 1u);
}

TEST(IfCorrelationTest, NegatedConditionsMergeIntoElse)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>, %b: memref<4xi32>) {
  %z = arith.constant 0 : index
  %one = arith.constant 1 : index
  %v = memref.load %a[%z] : memref<4xi32>
  %zero = arith.constant 0 : i32
  %c = arith.cmpi sgt, %v, %zero : i32
  %nc = arith.cmpi sle, %v, %zero : i32
  scf.if %c {
    memref.store %v, %b[%z] : memref<4xi32>
  }
  scf.if %nc {
    memref.store %v, %b[%one] : memref<4xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("if-correlation");
                                return pass->run(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kIf), 1u);
}

TEST(IfCorrelationTest, UnrelatedConditionsStay)
{
    applyChecked(R"(
func.func @f(%a: memref<4xi32>, %b: memref<4xi32>) {
  %z = arith.constant 0 : index
  %one = arith.constant 1 : index
  %v = memref.load %a[%z] : memref<4xi32>
  %w = memref.load %a[%one] : memref<4xi32>
  %zero = arith.constant 0 : i32
  %c1 = arith.cmpi sgt, %v, %zero : i32
  %c2 = arith.cmpi sgt, %w, %zero : i32
  scf.if %c1 {
    memref.store %v, %b[%z] : memref<4xi32>
  }
  scf.if %c2 {
    memref.store %w, %b[%one] : memref<4xi32>
  }
})",
                 [](Operation &f) {
                     auto pass = createPass("if-correlation");
                     return pass->run(f);
                 },
                 /*expect_change=*/false);
}

// --- Memory reuse / cf-mux ----------------------------------------------

TEST(MemoryReuseTest, HoistsInvariantLoad)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<8xi32>, %k: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 8 {
    %scale = memref.load %k[%z] : memref<1xi32>
    %v = memref.load %a[%i] : memref<8xi32>
    %w = arith.muli %v, %scale : i32
    memref.store %w, %a[%i] : memref<8xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("memory-reuse");
                                return pass->run(f);
                            });
    // The %k load is now outside the loop.
    auto loops = topLevelLoops(m.firstFunc()->region(0).block());
    size_t loads_in_loop = 0;
    walk(*loops[0], [&](Operation &op) {
        if (isa(op, opnames::kLoad))
            ++loads_in_loop;
    });
    EXPECT_EQ(loads_in_loop, 1u);
}

TEST(MemoryReuseTest, WrittenBufferNotHoisted)
{
    applyChecked(R"(
func.func @f(%k: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 8 {
    %v = memref.load %k[%z] : memref<1xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %k[%z] : memref<1xi32>
  }
})",
                 [](Operation &f) {
                     auto pass = createPass("memory-reuse");
                     return pass->run(f);
                 },
                 /*expect_change=*/false);
}

TEST(CfMuxTest, StoresInBothBranchesMerge)
{
    Module m = applyChecked(R"(
func.func @f(%a: memref<4xi32>, %b: memref<4xi32>) {
  %z = arith.constant 0 : index
  %v = memref.load %a[%z] : memref<4xi32>
  %w = memref.load %b[%z] : memref<4xi32>
  %zero = arith.constant 0 : i32
  %c = arith.cmpi sgt, %v, %zero : i32
  scf.if %c {
    memref.store %v, %a[%z] : memref<4xi32>
  } else {
    memref.store %w, %a[%z] : memref<4xi32>
  }
})",
                            [](Operation &f) {
                                auto pass = createPass("cf-mux");
                                return pass->run(f);
                            });
    EXPECT_EQ(countOpsNamed(m, opnames::kIf), 0u);
    EXPECT_EQ(countOpsNamed(m, opnames::kSelect), 1u);
}

TEST(CfMuxTest, DifferentAddressesRefused)
{
    applyChecked(R"(
func.func @f(%a: memref<4xi32>) {
  %z = arith.constant 0 : index
  %one = arith.constant 1 : index
  %v = memref.load %a[%z] : memref<4xi32>
  %zero = arith.constant 0 : i32
  %c = arith.cmpi sgt, %v, %zero : i32
  scf.if %c {
    memref.store %v, %a[%z] : memref<4xi32>
  } else {
    memref.store %v, %a[%one] : memref<4xi32>
  }
})",
                 [](Operation &f) {
                     auto pass = createPass("cf-mux");
                     return pass->run(f);
                 },
                 /*expect_change=*/false);
}

// --- Pipelines ----------------------------------------------------------

TEST(PipelineTest, UnrollPlusForwardCollapsesScalarLoop)
{
    // The byte_enable pattern: tiny loop updating a scalar cell; unroll
    // then forward leaves one load and one store.
    Module m = applyChecked(R"(
func.func @f(%flags: memref<4xi32>, %state: memref<1xi32>) {
  %z = arith.constant 0 : index
  affine.for %i = 0 to 4 {
    %s = memref.load %state[%z] : memref<1xi32>
    %f = memref.load %flags[%i] : memref<4xi32>
    %n = arith.ori %s, %f : i32
    memref.store %n, %state[%z] : memref<1xi32>
  }
})",
                            [](Operation &f) {
                                bool c = createPass("loop-unroll")->run(f);
                                c |= forwardMemory(f);
                                c |= canonicalize(f);
                                return c;
                            });
    EXPECT_EQ(countLoops(m), 0u);
    EXPECT_EQ(countOpsNamed(m, opnames::kStore), 1u);
    // state loads: exactly one (initial value).
    size_t state_loads = 0;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kLoad) &&
            op.operand(0).type().shape() == std::vector<int64_t>{1}) {
            ++state_loads;
        }
    });
    EXPECT_EQ(state_loads, 1u);
}

TEST(PipelineTest, AllPassesOnMixedProgramPreserveSemantics)
{
    const char *text = R"(
func.func @f(%a: memref<16xi32>, %b: memref<16xi32>, %s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  memref.store %zero, %s[%z] : memref<1xi32>
  affine.for %i = 0 to 16 {
    %v = memref.load %a[%i] : memref<16xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%i] : memref<16xi32>
  }
  affine.for %j = 0 to 16 {
    %v = memref.load %b[%j] : memref<16xi32>
    %acc = memref.load %s[%z] : memref<1xi32>
    %n = arith.addi %acc, %v : i32
    memref.store %n, %s[%z] : memref<1xi32>
  }
})";
    applyChecked(text, [](Operation &f) {
        bool changed = false;
        for (const std::string &name : allPassNames()) {
            changed |= createPass(name)->run(f);
            changed |= canonicalize(f);
        }
        return changed;
    });
}

} // namespace
} // namespace seer::passes

namespace seer::passes {
namespace {

using namespace ir;

// --- canonicalize components added for re-emitted code -------------------

TEST(CleanupTest, PureOpsHoistOutOfLoops)
{
    // rend-style recomputation inside a while condition must move out.
    Module m = parseModule(R"(
func.func @f(%a: memref<8xi32>, %s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %w = memref.load %s[%z] : memref<1xi32>
  memref.store %zero, %s[%z] : memref<1xi32>
  affine.for %i = 0 to 8 {
    %bound = arith.addi %w, %w : i32
    %v = memref.load %a[%i] : memref<8xi32>
    %n = arith.addi %v, %bound : i32
    memref.store %n, %a[%i] : memref<8xi32>
  }
})");
    verifyOrDie(m);
    Module before = cloneModule(m);
    canonicalize(*m.firstFunc());
    verifyOrDie(m);
    // The %bound computation is loop-invariant: no addi of %w remains
    // inside the loop.
    Operation *loop =
        topLevelLoops(m.firstFunc()->region(0).block())[0];
    size_t invariant_adds = 0;
    walk(*loop, [&](Operation &op) {
        if (!isa(op, opnames::kAddI))
            return;
        bool all_outside = true;
        for (Value operand : op.operands()) {
            if (!isDefinedOutside(operand, *loop))
                all_outside = false;
        }
        if (all_outside)
            ++invariant_adds;
    });
    EXPECT_EQ(invariant_adds, 0u);
}

TEST(CleanupTest, DivisionIsNeverHoisted)
{
    // Hoisting a div out of the if would introduce a trap.
    Module m = parseModule(R"(
func.func @f(%a: memref<8xi32>) {
  %zero = arith.constant 0 : i32
  %hundred = arith.constant 100 : i32
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %c = arith.cmpi ne, %v, %zero : i32
    scf.if %c {
      %q = arith.divsi %hundred, %v : i32
      memref.store %q, %a[%i] : memref<8xi32>
    }
  }
})");
    canonicalize(*m.firstFunc());
    verifyOrDie(m);
    bool div_inside_if = false;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kDivSI) && op.parentOp() &&
            isa(*op.parentOp(), opnames::kIf)) {
            div_inside_if = true;
        }
    });
    EXPECT_TRUE(div_inside_if);
}

TEST(CleanupTest, CseMergesDuplicatesButNotAcrossTypes)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<8xi32>) {
  %z = arith.constant 0 : index
  %v = memref.load %a[%z] : memref<8xi32>
  %x1 = arith.addi %v, %v : i32
  %x2 = arith.addi %v, %v : i32
  %s = arith.addi %x1, %x2 : i32
  memref.store %s, %a[%z] : memref<8xi32>
})");
    Module before = cloneModule(m);
    canonicalize(*m.firstFunc());
    verifyOrDie(m);
    size_t adds = 0;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kAddI))
            ++adds;
    });
    EXPECT_EQ(adds, 2u); // x1==x2 merged; s remains
}

TEST(CleanupTest, CastFoldingTurnsShiftsConstant)
{
    // After unrolling, (index_cast const) feeding a shift must fold so
    // the shift amount is constant (free in the area model).
    Module m = parseModule(R"(
func.func @f(%a: memref<8xi32>) {
  %z = arith.constant 0 : index
  %c3 = arith.constant 3 : index
  %amt = arith.index_cast %c3 : index to i32
  %v = memref.load %a[%z] : memref<8xi32>
  %s = arith.shli %v, %amt : i32
  memref.store %s, %a[%z] : memref<8xi32>
})");
    canonicalize(*m.firstFunc());
    verifyOrDie(m);
    bool shift_by_const = false;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kShLI))
            shift_by_const = getConstantInt(op.operand(1)).has_value();
    });
    EXPECT_TRUE(shift_by_const);
}

} // namespace
} // namespace seer::passes

namespace seer::passes {
namespace {

using namespace ir;

// --- Figure 10: if correlation after unrolling ---------------------------

TEST(Figure10Test, UnrollThenCorrelateMergesIdenticalConditions)
{
    // A guarded update inside a small loop: unrolling replicates the if
    // with the *same* loop-invariant condition four times; correlation
    // must collapse them into one region.
    Module m = parseModule(R"(
func.func @f(%flag: memref<1xi32>, %a: memref<4xi32>) {
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %fv = memref.load %flag[%z] : memref<1xi32>
  %c = arith.cmpi ne, %fv, %zero : i32
  affine.for %i = 0 to 4 {
    scf.if %c {
      %v = memref.load %a[%i] : memref<4xi32>
      %w = arith.addi %v, %v : i32
      memref.store %w, %a[%i] : memref<4xi32>
    }
  }
})");
    verifyOrDie(m);
    Module before = cloneModule(m);
    Operation &func = *m.firstFunc();
    ASSERT_TRUE(createPass("loop-unroll")->run(func));
    size_t ifs_after_unroll = 0;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kIf))
            ++ifs_after_unroll;
    });
    EXPECT_EQ(ifs_after_unroll, 4u);

    // Unrolling leaves iv constants between the ifs; canonicalize
    // hoists them so the ifs become adjacent (as in the SEER flow).
    canonicalize(func);
    ASSERT_TRUE(createPass("if-correlation")->run(func));
    size_t ifs_after_correlation = 0;
    walk(m, [&](Operation &op) {
        if (isa(op, opnames::kIf))
            ++ifs_after_correlation;
    });
    EXPECT_EQ(ifs_after_correlation, 1u);
    verifyOrDie(m);

    // Semantics preserved across the sequence.
    for (uint64_t seed : {1u, 5u}) {
        Module lhs = cloneModule(before);
        Module rhs = cloneModule(m);
        Buffer flag1(Type::memref({1}, Type::i32()));
        Buffer a1(Type::memref({4}, Type::i32()));
        Buffer flag2(Type::memref({1}, Type::i32()));
        Buffer a2(Type::memref({4}, Type::i32()));
        Rng rng1(seed), rng2(seed);
        flag1.ints[0] = flag2.ints[0] = rng1.nextRange(0, 1);
        for (int i = 0; i < 4; ++i)
            a1.ints[i] = a2.ints[i] = rng2.nextRange(-9, 9);
        interpret(lhs, "f", {&flag1, &a1});
        interpret(rhs, "f", {&flag2, &a2});
        EXPECT_EQ(a1.ints, a2.ints);
    }
}

} // namespace
} // namespace seer::passes
