/**
 * Fault-isolation tests for the SEER driver (PR 2): a crashing injected
 * rule must be quarantined and the run must still deliver valid IR with
 * the degradation reported; strict mode must fail fast instead; the
 * deadline must cut exploration short without compromising the output.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/seer.h"
#include "core/verify.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace seer::core {
namespace {

const char *kSeqLoops = R"(
func.func @seq_loops(%a: memref<64xi32>, %b: memref<64xi32>,
                     %c: memref<64xi32>) {
  affine.for %i = 0 to 32 {
    %v = memref.load %a[%i] : memref<64xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%i] : memref<64xi32>
  }
  affine.for %j = 0 to 32 {
    %v = memref.load %b[%j] : memref<64xi32>
    %c2 = arith.constant 2 : i32
    %w = arith.muli %v, %c2 : i32
    memref.store %w, %c[%j] : memref<64xi32>
  }
})";

/** An always-throwing dynamic rule matching every class. */
eg::Rewrite
crashingRule()
{
    return eg::makeDynRewrite(
        "chaos-crash", "?x",
        [](eg::EGraph &, const eg::Match &)
            -> std::optional<eg::TermPtr> { fatal("injected fault"); });
}

TEST(RobustnessTest, CrashingInjectedRuleDegradesButDelivers)
{
    ir::Module input = ir::parseModule(kSeqLoops);
    SeerOptions options;
    options.extra_control_rules.push_back(crashingRule());
    SeerResult result = optimize(input, "seq_loops", options);

    // The run completed and the output is valid, equivalent IR.
    EXPECT_EQ(ir::verify(result.module), "")
        << ir::toString(result.module);
    std::string diag;
    EXPECT_TRUE(checkModuleEquivalence(input, result.module, "seq_loops",
                                       {}, &diag))
        << diag;

    // ... and the fault shows up in the health stats.
    EXPECT_TRUE(result.stats.degraded);
    EXPECT_FALSE(result.stats.recovered_errors.empty());
    EXPECT_NE(result.stats.recovered_errors[0].find("injected fault"),
              std::string::npos);
    ASSERT_FALSE(result.stats.quarantined_rules.empty());
    EXPECT_EQ(result.stats.quarantined_rules[0], "chaos-crash");

    // The health section reaches the --stats JSON.
    std::string text = toJson(result.stats).dump();
    EXPECT_NE(text.find("\"degraded\": true"), std::string::npos);
    EXPECT_NE(text.find("\"health\""), std::string::npos);
    EXPECT_NE(text.find("chaos-crash"), std::string::npos);
}

TEST(RobustnessTest, StrictModeFailsFastWithTheOriginalError)
{
    ir::Module input = ir::parseModule(kSeqLoops);
    SeerOptions options;
    options.strict = true;
    options.extra_control_rules.push_back(crashingRule());
    try {
        optimize(input, "seq_loops", options);
        FAIL() << "strict mode must propagate the injected fault";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("injected fault"),
                  std::string::npos);
    }
}

/** A balanced binary tree over `width` distinct junk leaves
 *  (~2*width-1 distinct nodes; binary arity keeps per-node parent
 *  bookkeeping cheap and addTerm recursion shallow). */
eg::TermPtr
giantJunkTerm(size_t width)
{
    std::vector<eg::TermPtr> level;
    level.reserve(width);
    for (size_t i = 0; i < width; ++i)
        level.push_back(
            eg::makeTerm(Symbol("junk" + std::to_string(i)), {}));
    while (level.size() > 1) {
        std::vector<eg::TermPtr> next;
        next.reserve(level.size() / 2 + 1);
        for (size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(eg::makeTerm(Symbol("junkpair"),
                                        {level[i], level[i + 1]}));
        }
        if (level.size() % 2)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

TEST(RobustnessTest, ExplodingCrashRuleIsRefusedAndQuarantined)
{
    // The full containment chain in one run. The staged rule throws on
    // its first application, then "succeeds" once with a giant junk
    // term that would blow the graph far past the phase node budget,
    // then throws on every later call. Expected: the oversized
    // application is refused inside the apply loop (rolled back and
    // recorded as that rule's failure, not a phase abort), the throwing
    // calls trip the circuit breaker, and optimize() still returns
    // verifier-clean, equivalent IR with the whole trail in the stats.
    ir::Module input = ir::parseModule(kSeqLoops);
    SeerOptions options;
    options.quarantine_after = 3;
    options.runner.max_nodes = 500;
    auto calls = std::make_shared<size_t>(0);
    options.extra_control_rules.push_back(eg::makeDynRewrite(
        "chaos-explode", "?x",
        [calls](eg::EGraph &, const eg::Match &)
            -> std::optional<eg::TermPtr> {
            if ((*calls)++ == 1)
                return giantJunkTerm(2500); // > 4 x max_nodes
            fatal("exploding fault");
        }));
    SeerResult result = optimize(input, "seq_loops", options);

    EXPECT_TRUE(result.stats.degraded);
    ASSERT_FALSE(result.stats.quarantined_rules.empty());
    EXPECT_EQ(result.stats.quarantined_rules[0], "chaos-explode");
    ASSERT_FALSE(result.stats.recovered_errors.empty());
    bool refused = false;
    for (const std::string &error : result.stats.recovered_errors)
        refused |= error.find("application refused") != std::string::npos;
    EXPECT_TRUE(refused) << "the oversized application must be refused "
                            "in-loop, not absorbed silently";

    EXPECT_EQ(ir::verify(result.module), "")
        << ir::toString(result.module);
    std::string diag;
    EXPECT_TRUE(checkModuleEquivalence(input, result.module, "seq_loops",
                                       {}, &diag))
        << diag;

    std::string text = toJson(result.stats).dump();
    EXPECT_NE(text.find("\"phase_rollbacks\""), std::string::npos);
    EXPECT_NE(text.find("chaos-explode"), std::string::npos);
}

TEST(RobustnessTest, DegradedRunStillOptimizesWhatItCan)
{
    // The crashing rule poisons only itself: the rest of the rule set
    // keeps working, so the degraded run still applies rewrites.
    ir::Module input = ir::parseModule(kSeqLoops);
    SeerOptions options;
    options.extra_control_rules.push_back(crashingRule());
    SeerResult result = optimize(input, "seq_loops", options);
    EXPECT_GT(result.stats.unions_applied, 0u);
}

TEST(RobustnessTest, ExpiredDeadlineReturnsInputEquivalentIr)
{
    ir::Module input = ir::parseModule(kSeqLoops);
    SeerOptions options;
    options.deadline_seconds = 1e-9; // expires immediately
    SeerResult result = optimize(input, "seq_loops", options);
    EXPECT_TRUE(result.stats.deadline_hit);
    EXPECT_EQ(ir::verify(result.module), "");
    std::string diag;
    EXPECT_TRUE(checkModuleEquivalence(input, result.module, "seq_loops",
                                       {}, &diag))
        << diag;
}

TEST(RobustnessTest, MissingFunctionStillThrows)
{
    // Unrecoverable user error: no valid output exists for a function
    // that is not there.
    ir::Module input = ir::parseModule(kSeqLoops);
    EXPECT_THROW(optimize(input, "no_such_func"), FatalError);
}

TEST(RobustnessTest, CleanRunReportsHealthy)
{
    ir::Module input = ir::parseModule(kSeqLoops);
    SeerResult result = optimize(input, "seq_loops");
    EXPECT_FALSE(result.stats.degraded);
    EXPECT_EQ(result.stats.phase_rollbacks, 0u);
    EXPECT_TRUE(result.stats.recovered_errors.empty());
    EXPECT_TRUE(result.stats.quarantined_rules.empty());
    std::string text = toJson(result.stats).dump();
    EXPECT_NE(text.find("\"degraded\": false"), std::string::npos);
}

} // namespace
} // namespace seer::core
