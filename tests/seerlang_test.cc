/** SeerLang translation tests: IR -> term -> IR round trips. */
#include <gtest/gtest.h>

#include "ir/interp.h"
#include "ir/ops.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "seerlang/encoding.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"
#include "support/rng.h"

namespace seer::sl {
namespace {

using namespace ir;

std::vector<int64_t>
runWithSeed(const Module &module, uint64_t seed)
{
    Operation *func = module.firstFunc();
    Block &body = func->region(0).block();
    std::vector<Buffer> buffers;
    std::vector<RtValue> args;
    Rng rng(seed);
    for (size_t i = 0; i < body.numArgs(); ++i) {
        Type t = body.arg(i).type();
        if (t.isMemRef()) {
            buffers.emplace_back(t);
        } else if (t.isIndex() || t.isInteger()) {
            args.push_back(rng.nextRange(0, 3));
        } else {
            args.push_back(rng.nextDouble());
        }
    }
    // Fill buffers and assemble args in order.
    size_t buffer_index = 0;
    std::vector<RtValue> final_args;
    size_t scalar_index = 0;
    for (size_t i = 0; i < body.numArgs(); ++i) {
        Type t = body.arg(i).type();
        if (t.isMemRef()) {
            Buffer &buffer = buffers[buffer_index++];
            for (auto &v : buffer.ints)
                v = rng.nextRange(-50, 50);
            for (auto &v : buffer.floats)
                v = rng.nextDouble();
            final_args.push_back(&buffer);
        } else {
            final_args.push_back(args[scalar_index++]);
        }
    }
    interpret(module, func->strAttr("sym_name"), std::move(final_args));
    std::vector<int64_t> out;
    for (const Buffer &buffer : buffers) {
        out.insert(out.end(), buffer.ints.begin(), buffer.ints.end());
        for (double d : buffer.floats)
            out.push_back(static_cast<int64_t>(d * 4096));
    }
    return out;
}

/** IR -> term -> IR round trip with equivalence checking. */
void
roundTrip(const std::string &text)
{
    Module before = parseModule(text);
    verifyOrDie(before);
    Translation translation = funcToTerm(*before.firstFunc());

    EmitSpec spec;
    spec.func_name = translation.func_name;
    spec.args = translation.args;
    Module after = termToFunc(translation.term, spec);
    std::string diag = verify(after);
    ASSERT_EQ(diag, "") << toString(after) << "\nterm: "
                        << translation.term->str();
    for (uint64_t seed : {1u, 7u, 99u}) {
        EXPECT_EQ(runWithSeed(before, seed), runWithSeed(after, seed))
            << "--- before\n" << toString(before) << "--- after\n"
            << toString(after) << "\nterm: " << translation.term->str();
    }
}

TEST(SeerLangEncodingTest, ConstRoundTrip)
{
    Symbol s = encodeIntConst(-7, Type::i32());
    auto decoded = decodeIntConst(s);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->first, -7);
    EXPECT_EQ(decoded->second, Type::i32());
    EXPECT_FALSE(decodeIntConst(Symbol("var:x")).has_value());
}

TEST(SeerLangEncodingTest, FloatConstExactRoundTrip)
{
    for (double value : {0.0, 1.5, -2.25, 0.1, 3.141592653589793}) {
        auto decoded = decodeFloatConst(encodeFloatConst(value));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, value); // exact via hex-float
    }
}

TEST(SeerLangEncodingTest, ArgVarHelpers)
{
    auto arg = decodeArg(encodeArg("x", Type::memref({4}, Type::i32())));
    ASSERT_TRUE(arg.has_value());
    EXPECT_EQ(arg->first, "x");
    EXPECT_EQ(arg->second.str(), "memref<4xi32>");
    EXPECT_EQ(decodeVar(encodeVar("i")), "i");
    EXPECT_FALSE(decodeVar(Symbol("arg:a:i32")).has_value());
}

TEST(SeerLangEncodingTest, TagsAreUnique)
{
    EXPECT_NE(freshTag(), freshTag());
    EXPECT_NE(freshLoopId(), freshLoopId());
}

TEST(SeerLangEncodingTest, LoopSymbolFields)
{
    Symbol s = encodeFor("i", "L7");
    EXPECT_TRUE(isForSymbol(s));
    EXPECT_EQ(loopIdOf(s), "L7");
    EXPECT_FALSE(isForSymbol(Symbol("seq")));
}

TEST(SeerLangRoundTripTest, StraightLineArith)
{
    roundTrip(R"(
func.func @f(%a: memref<4xi32>) {
  %z = arith.constant 0 : index
  %v = memref.load %a[%z] : memref<4xi32>
  %c3 = arith.constant 3 : i32
  %w = arith.muli %v, %c3 : i32
  %x = arith.addi %w, %v : i32
  memref.store %x, %a[%z] : memref<4xi32>
})");
}

TEST(SeerLangRoundTripTest, MemoryOrderPreserved)
{
    // Two loads around a store of the same cell: the tagged encoding
    // must keep them distinct.
    roundTrip(R"(
func.func @f(%a: memref<2xi32>) {
  %z = arith.constant 0 : index
  %one = arith.constant 1 : index
  %v1 = memref.load %a[%z] : memref<2xi32>
  %c9 = arith.constant 9 : i32
  memref.store %c9, %a[%z] : memref<2xi32>
  %v2 = memref.load %a[%z] : memref<2xi32>
  %s = arith.addi %v1, %v2 : i32
  memref.store %s, %a[%one] : memref<2xi32>
})");
}

TEST(SeerLangRoundTripTest, SimpleLoop)
{
    roundTrip(R"(
func.func @f(%a: memref<10xi32>) {
  affine.for %i = 0 to 10 {
    %v = memref.load %a[%i] : memref<10xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %a[%i] : memref<10xi32>
  }
})");
}

TEST(SeerLangRoundTripTest, NestedDynamicBoundLoops)
{
    roundTrip(R"(
func.func @f(%a: memref<64xi32>) {
  affine.for %jj = 0 to 64 step 8 {
    affine.for %j = %jj to %jj + 8 {
      %v = memref.load %a[%j] : memref<64xi32>
      %w = arith.addi %v, %v : i32
      memref.store %w, %a[%j] : memref<64xi32>
    }
  }
})");
}

TEST(SeerLangRoundTripTest, MultiDimAccess)
{
    roundTrip(R"(
func.func @f(%a: memref<4x6xi32>) {
  affine.for %i = 0 to 4 {
    affine.for %j = 0 to 6 {
      %v = memref.load %a[%i, %j] : memref<4x6xi32>
      %w = arith.addi %v, %v : i32
      memref.store %w, %a[%i, %j] : memref<4x6xi32>
    }
  }
})");
}

TEST(SeerLangRoundTripTest, IfStatement)
{
    roundTrip(R"(
func.func @f(%a: memref<8xi32>, %b: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    %zero = arith.constant 0 : i32
    %c = arith.cmpi sgt, %v, %zero : i32
    scf.if %c {
      memref.store %v, %b[%i] : memref<8xi32>
    } else {
      %n = arith.subi %zero, %v : i32
      memref.store %n, %b[%i] : memref<8xi32>
    }
  }
})");
}

TEST(SeerLangRoundTripTest, WhileLoop)
{
    roundTrip(R"(
func.func @f(%s: memref<1xi32>) {
  %z = arith.constant 0 : index
  %limit = arith.constant 12 : i32
  %one = arith.constant 1 : i32
  scf.while {
    %v = memref.load %s[%z] : memref<1xi32>
    %cond = arith.cmpi slt, %v, %limit : i32
    scf.condition %cond
  } do {
    %v = memref.load %s[%z] : memref<1xi32>
    %n = arith.addi %v, %one : i32
    memref.store %n, %s[%z] : memref<1xi32>
  }
})");
}

TEST(SeerLangRoundTripTest, AllocAndFloats)
{
    roundTrip(R"(
func.func @f(%out: memref<4xf64>) {
  %tmp = memref.alloc() : memref<4xf64>
  %half = arith.constant 0.5 : f64
  affine.for %i = 0 to 4 {
    %v = memref.load %out[%i] : memref<4xf64>
    %w = arith.mulf %v, %half : f64
    memref.store %w, %tmp[%i] : memref<4xf64>
  }
  affine.for %j = 0 to 4 {
    %v = memref.load %tmp[%j] : memref<4xf64>
    memref.store %v, %out[%j] : memref<4xf64>
  }
})");
}

TEST(SeerLangRoundTripTest, CastsAndSelect)
{
    roundTrip(R"(
func.func @f(%a: memref<8xi8>, %b: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi8>
    %w = arith.extsi %v : i8 to i32
    %u = memref.load %b[%i] : memref<8xi32>
    %zero = arith.constant 0 : i32
    %c = arith.cmpi slt, %w, %zero : i32
    %r = arith.select %c, %u, %w : i32
    memref.store %r, %b[%i] : memref<8xi32>
  }
})");
}

TEST(SeerLangTest, ValueIfIsRejected)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<4xi32>, %c: i1) {
  %z = arith.constant 0 : index
  %x = arith.constant 1 : i32
  %y = arith.constant 2 : i32
  %r = scf.if %c -> (i32) {
    scf.yield %x : i32
  } else {
    scf.yield %y : i32
  }
  memref.store %r, %a[%z] : memref<4xi32>
})");
    EXPECT_THROW(funcToTerm(*m.firstFunc()), FatalError);
}

TEST(SeerLangTest, SnippetSpecInference)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<16xi32>) {
  affine.for %jj = 0 to 16 step 4 {
    affine.for %j = %jj to %jj + 4 {
      %v = memref.load %a[%j] : memref<16xi32>
      memref.store %v, %a[%j] : memref<16xi32>
    }
  }
})");
    Translation translation = funcToTerm(*m.firstFunc());
    // The inner loop term has a free var (jj) and the arg a.
    const auto &func_term = translation.term;
    const auto &outer = func_term->child(0); // affine.for jj
    ASSERT_TRUE(isForSymbol(outer->op()));
    const auto &inner = outer->child(3);
    ASSERT_TRUE(isForSymbol(inner->op()));
    EmitSpec spec = inferSpec(inner, "snippet");
    ASSERT_EQ(spec.args.size(), 2u);
    EXPECT_EQ(spec.args[0].first, "a");
    EXPECT_TRUE(spec.args[0].second.isMemRef());
    EXPECT_EQ(spec.args[1].first, "jj");
    EXPECT_TRUE(spec.args[1].second.isIndex());

    // Emitting the snippet must verify.
    Module snippet = termToFunc(inner, spec);
    EXPECT_EQ(verify(snippet), "") << toString(snippet);
}

TEST(SeerLangTest, LoopRegistryPopulated)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    memref.store %v, %a[%i] : memref<8xi32>
  }
  affine.for %j = 0 to 8 {
    %v = memref.load %a[%j] : memref<8xi32>
    memref.store %v, %a[%j] : memref<8xi32>
  }
})");
    Translation translation = funcToTerm(*m.firstFunc());
    EXPECT_EQ(translation.loops.size(), 2u);
    for (const auto &[loop_id, op] : translation.loops) {
        EXPECT_TRUE(isa(*op, ir::opnames::kAffineFor));
        EXPECT_EQ(loop_id[0], 'L');
    }
}

TEST(SeerLangTest, EmittedLoopsCarryLoopIdAttr)
{
    Module m = parseModule(R"(
func.func @f(%a: memref<8xi32>) {
  affine.for %i = 0 to 8 {
    %v = memref.load %a[%i] : memref<8xi32>
    memref.store %v, %a[%i] : memref<8xi32>
  }
})");
    Translation translation = funcToTerm(*m.firstFunc());
    EmitSpec spec{translation.func_name, translation.args};
    Module out = termToFunc(translation.term, spec);
    bool found = false;
    walk(out, [&](Operation &op) {
        if (isa(op, ir::opnames::kAffineFor)) {
            EXPECT_TRUE(op.hasAttr("seer.loop_id"));
            found = true;
        }
    });
    EXPECT_TRUE(found);
}

} // namespace
} // namespace seer::sl
