/** Verifier tests: structural and type violations must be diagnosed. */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace seer::ir {
namespace {

Module
funcWithBody(const std::function<void(OpBuilder &, Block &)> &fill)
{
    Module module;
    auto func = std::make_unique<Operation>(Symbol(opnames::kFunc));
    func->setAttr("sym_name", Attribute("f"));
    Block &body = func->addRegion().block();
    OpBuilder builder = OpBuilder::atEnd(body);
    fill(builder, body);
    builder.create(opnames::kReturn, {}, {});
    module.push_back(std::move(func));
    return module;
}

TEST(VerifierTest, AcceptsWellFormed)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Value c = b.intConstant(Type::i32(), 1);
        b.binary(opnames::kAddI, c, c);
    });
    EXPECT_EQ(verify(m), "");
}

TEST(VerifierTest, RejectsTypeMismatchInBinary)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Value a = b.intConstant(Type::i32(), 1);
        Value c = b.intConstant(Type::i64(), 1);
        b.create(opnames::kAddI, {a, c}, {Type::i32()});
    });
    EXPECT_NE(verify(m).find("operand types differ"), std::string::npos);
}

TEST(VerifierTest, RejectsWrongOperandCount)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Value a = b.intConstant(Type::i32(), 1);
        b.create(opnames::kAddI, {a}, {Type::i32()});
    });
    EXPECT_NE(verify(m).find("expected 2 operands"), std::string::npos);
}

TEST(VerifierTest, RejectsCmpResultNotI1)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Value a = b.intConstant(Type::i32(), 1);
        Operation *cmp =
            b.create(opnames::kCmpI, {a, a}, {Type::i32()});
        cmp->setAttr("predicate", Attribute("slt"));
    });
    EXPECT_NE(verify(m).find("cmp result must be i1"), std::string::npos);
}

TEST(VerifierTest, RejectsBadSelect)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Value a = b.intConstant(Type::i32(), 1);
        b.create(opnames::kSelect, {a, a, a}, {Type::i32()});
    });
    EXPECT_NE(verify(m).find("select condition"), std::string::npos);
}

TEST(VerifierTest, RejectsLoadRankMismatch)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Value mem = b.alloc(Type::memref({4, 4}, Type::i32()));
        Value i = b.indexConstant(0);
        b.create(opnames::kLoad, {mem, i}, {Type::i32()});
    });
    EXPECT_NE(verify(m).find("index count"), std::string::npos);
}

TEST(VerifierTest, RejectsNonIndexSubscript)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Value mem = b.alloc(Type::memref({4}, Type::i32()));
        Value i = b.intConstant(Type::i32(), 0);
        b.create(opnames::kLoad, {mem, i}, {Type::i32()});
    });
    EXPECT_NE(verify(m).find("index-typed"), std::string::npos);
}

TEST(VerifierTest, RejectsUseBeforeDef)
{
    // Build f() { %x = addi %y, %y } where %y is defined later.
    Module m = funcWithBody([](OpBuilder &b, Block &block) {
        Value c = b.intConstant(Type::i32(), 1);
        Operation *add = b.create(opnames::kAddI, {c, c}, {Type::i32()});
        // Rewire the add to use a value defined after it.
        Value late = b.intConstant(Type::i32(), 2);
        add->setOperand(0, late);
        (void)block;
    });
    EXPECT_NE(verify(m).find("dominate"), std::string::npos);
}

TEST(VerifierTest, RejectsUseOfInnerValueOutside)
{
    // A value defined inside a loop used after the loop.
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Operation *loop = b.affineFor(0, 4);
        OpBuilder inner = OpBuilder::atEnd(loop->region(0).block());
        Value v = inner.intConstant(Type::i32(), 3);
        inner.create(opnames::kAffineYield, {}, {});
        b.create(opnames::kAddI, {v, v}, {Type::i32()});
    });
    EXPECT_NE(verify(m).find("dominate"), std::string::npos);
}

TEST(VerifierTest, RejectsMissingTerminator)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Operation *loop = b.affineFor(0, 4);
        (void)loop; // body left empty: no affine.yield
    });
    EXPECT_NE(verify(m).find("empty block"), std::string::npos);
}

TEST(VerifierTest, RejectsWrongTerminatorKind)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Operation *loop = b.affineFor(0, 4);
        OpBuilder inner = OpBuilder::atEnd(loop->region(0).block());
        inner.create(opnames::kYield, {}, {}); // should be affine.yield
    });
    EXPECT_NE(verify(m).find("affine.yield"), std::string::npos);
}

TEST(VerifierTest, RejectsScfIfYieldMismatch)
{
    Module m = parseModule(R"(
func.func @f(%c: i1, %a: i32) -> i32 {
  %r = scf.if %c -> (i32) {
    scf.yield %a : i32
  } else {
    scf.yield
  }
  func.return %r : i32
})");
    EXPECT_NE(verify(m).find("scf.yield operand count"),
              std::string::npos);
}

TEST(VerifierTest, RejectsScfWhileWithoutCondition)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Operation *loop = b.scfWhile();
        OpBuilder::atEnd(loop->region(0).block())
            .create(opnames::kYield, {}, {});
        OpBuilder::atEnd(loop->region(1).block())
            .create(opnames::kYield, {}, {});
    });
    EXPECT_NE(verify(m).find("scf.condition"), std::string::npos);
}

TEST(VerifierTest, RejectsNonPositiveStep)
{
    Module m = funcWithBody([](OpBuilder &b, Block &) {
        Operation *loop = b.affineFor(0, 4);
        loop->setAttr("step", Attribute(int64_t{0}));
        OpBuilder::atEnd(loop->region(0).block())
            .create(opnames::kAffineYield, {}, {});
    });
    EXPECT_NE(verify(m).find("step"), std::string::npos);
}

} // namespace
} // namespace seer::ir
