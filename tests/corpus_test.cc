/**
 * Corpus-harness tests: generator determinism, the differential
 * oracle's failure taxonomy (exercised with a seeded unsound rewrite),
 * shrinker convergence/determinism, and the repro round trip.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "corpus/generator.h"
#include "corpus/oracle.h"
#include "corpus/runner.h"
#include "corpus/shrink.h"
#include "ir/op.h"
#include "ir/parser.h"

namespace seer::corpus {
namespace {

/** A small kernel with one live store: the unsound store-dropping rule
 *  turns it into a miscompile the oracle must catch. */
const char *kStoreKernel = R"(
func.func @fuzz(%a: memref<8xi32>, %b: memref<8xi32>) {
  %c7 = arith.constant 7 : i32
  affine.for %i = 0 to 4 {
    %v = memref.load %a[%i] : memref<8xi32>
    %s = arith.addi %v, %c7 : i32
    memref.store %s, %b[%i] : memref<8xi32>
  }
  func.return
})";

/** Oracle options tuned for unit-test speed: no reference arms
 *  (covered by their own test), greedy extraction. Workload runs stay
 *  at 3: the interpreter is cheap next to optimize(), and one workload
 *  can miss a divergence by luck. */
OracleOptions
fastOracle()
{
    OracleOptions options;
    options.seer.exact_datapath = false;
    options.check_reference = false;
    return options;
}

size_t
opCount(const std::string &source)
{
    ir::Module module = ir::parseModule(source);
    size_t n = 0;
    ir::walk(module, [&](ir::Operation &) { ++n; });
    return n;
}

TEST(CorpusGeneratorTest, DeterministicPerSeed)
{
    GeneratorOptions options;
    EXPECT_EQ(generateProgram(7, options), generateProgram(7, options));
    EXPECT_NE(generateProgram(7, options), generateProgram(8, options));
}

TEST(CorpusGeneratorTest, ShapeKnobsStayInBounds)
{
    // Tight buffers + wide trips must still generate valid programs
    // (the generator clamps to keep every access in bounds).
    GeneratorOptions options;
    options.buffer_size = 4;
    options.max_trip = 40;
    options.allow_nested_loops = true;
    options.allow_min_max = true;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        std::string source = generateProgram(seed, options);
        EXPECT_NO_THROW(ir::parseModule(source)) << source;
    }
}

TEST(CorpusOracleTest, CleanKernelPasses)
{
    OracleVerdict verdict = checkSource(kStoreKernel, fastOracle());
    EXPECT_EQ(verdict.kind, FailureKind::None) << verdict.detail;
    EXPECT_FALSE(verdict.failed());
}

TEST(CorpusOracleTest, GarbageIsAParseError)
{
    OracleVerdict verdict = checkSource("not a program", fastOracle());
    EXPECT_EQ(verdict.kind, FailureKind::ParseError);
    EXPECT_TRUE(verdict.failed());
}

TEST(CorpusOracleTest, InjectedUnsoundRuleIsCaught)
{
    OracleOptions options = fastOracle();
    options.seer.extra_control_rules.push_back(
        makeUnsoundStoreDropRule());
    OracleVerdict verdict = checkSource(kStoreKernel, options);
    EXPECT_EQ(verdict.kind, FailureKind::Miscompile) << verdict.detail;
    EXPECT_NE(verdict.detail.find("diverges"), std::string::npos);
}

TEST(CorpusOracleTest, ReferenceArmAgreesOnCleanKernel)
{
    OracleOptions options = fastOracle();
    options.check_reference = true;
    OracleVerdict verdict = checkSource(kStoreKernel, options);
    EXPECT_EQ(verdict.kind, FailureKind::None) << verdict.detail;
}

TEST(CorpusShrinkTest, RequiresAFailingInput)
{
    ShrinkStats stats;
    std::string out = shrink(
        kStoreKernel, [](const std::string &) { return false; }, {},
        &stats);
    EXPECT_EQ(out, kStoreKernel);
    EXPECT_FALSE(stats.converged);
    EXPECT_EQ(stats.accepted, 0u);
}

TEST(CorpusShrinkTest, ConvergesOnInjectedMiscompile)
{
    OracleOptions oracle = fastOracle();
    oracle.seer.extra_control_rules.push_back(
        makeUnsoundStoreDropRule());
    ASSERT_EQ(checkSource(kStoreKernel, oracle).kind,
              FailureKind::Miscompile);

    Predicate still_fails = [&](const std::string &candidate) {
        return checkSource(candidate, oracle).kind ==
               FailureKind::Miscompile;
    };
    ShrinkStats stats;
    std::string minimized =
        shrink(kStoreKernel, still_fails, {}, &stats);

    EXPECT_TRUE(stats.converged);
    EXPECT_GT(stats.accepted, 0u);
    // The minimal miscompile here is a bare store: func + store +
    // operands + return. Anything <= 6 ops means the loop, the load,
    // and the arithmetic were all shrunk away.
    EXPECT_LE(opCount(minimized), 6u) << minimized;
    EXPECT_NE(minimized.find("memref.store"), std::string::npos);
    // The result still fails, by contract.
    EXPECT_TRUE(still_fails(minimized));
}

TEST(CorpusShrinkTest, DeterministicAcrossRuns)
{
    OracleOptions oracle = fastOracle();
    oracle.seer.extra_control_rules.push_back(
        makeUnsoundStoreDropRule());
    Predicate still_fails = [&](const std::string &candidate) {
        return checkSource(candidate, oracle).kind ==
               FailureKind::Miscompile;
    };
    ShrinkStats first_stats, second_stats;
    std::string first =
        shrink(kStoreKernel, still_fails, {}, &first_stats);
    std::string second =
        shrink(kStoreKernel, still_fails, {}, &second_stats);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first_stats.checks, second_stats.checks);
    EXPECT_EQ(first_stats.accepted, second_stats.accepted);
}

TEST(CorpusRunnerTest, ReportAndReproRoundTrip)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "seer_corpus_test_repros";
    std::filesystem::remove_all(dir);

    CorpusOptions options;
    options.first_seed = 6; // small program with a live store
    options.count = 1;
    options.oracle = fastOracle();
    options.oracle.seer.extra_control_rules.push_back(
        makeUnsoundStoreDropRule());
    options.repro_dir = dir.string();

    CorpusReport report = runCorpus(options);
    ASSERT_EQ(report.total, 1u);
    ASSERT_EQ(report.failed, 1u);
    ASSERT_EQ(report.failures.size(), 1u);
    const CaseFailure &failure = report.failures[0];
    EXPECT_EQ(failure.seed, 6u);
    EXPECT_EQ(failure.kind, FailureKind::Miscompile);
    EXPECT_LE(failure.minimized_ops, failure.program_ops);
    EXPECT_EQ(report.taxonomy.at("miscompile"), 1u);

    // The repro file exists, parses (its // header is comment-only),
    // and still fails the same oracle the run used.
    ASSERT_FALSE(failure.repro_path.empty());
    std::ifstream file(failure.repro_path);
    ASSERT_TRUE(file.good());
    std::stringstream text;
    text << file.rdbuf();
    EXPECT_NE(text.str().find("// kind: miscompile"),
              std::string::npos);
    EXPECT_EQ(checkSource(text.str(), options.oracle).kind,
              FailureKind::Miscompile);

    json::Value json = toJson(report, options);
    std::string dumped = json.dump(2);
    EXPECT_NE(dumped.find("\"schema\": \"seer-corpus-v1\""),
              std::string::npos);
    EXPECT_NE(dumped.find("\"miscompile\""), std::string::npos);

    std::filesystem::remove_all(dir);
}

TEST(CorpusRunnerTest, VerdictsIndependentOfJobCount)
{
    CorpusOptions options;
    options.first_seed = 1;
    options.count = 4;
    options.oracle = fastOracle();
    options.minimize = false;

    CorpusReport serial = runCorpus(options);
    options.jobs = 4;
    CorpusReport parallel = runCorpus(options);
    EXPECT_EQ(serial.passed, parallel.passed);
    EXPECT_EQ(serial.failed, parallel.failed);
    EXPECT_EQ(serial.taxonomy, parallel.taxonomy);
}

TEST(CorpusRunnerTest, ProgressArrivesInSeedOrder)
{
    CorpusOptions options;
    options.first_seed = 10;
    options.count = 6;
    options.oracle = fastOracle();
    options.minimize = false;
    options.jobs = 3;
    std::vector<uint64_t> seen;
    options.progress = [&](uint64_t seed, const OracleVerdict &) {
        seen.push_back(seed);
    };
    runCorpus(options);
    ASSERT_EQ(seen.size(), 6u);
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 10u + i);
}

} // namespace
} // namespace seer::corpus
