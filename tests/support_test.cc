/** Tests for the support library: symbols, errors, tables, RNG, JSON. */
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <thread>

#include "support/error.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/symbol.h"
#include "support/table.h"

namespace seer {
namespace {

TEST(JsonTest, ScalarsRender)
{
    EXPECT_EQ(json::Value().dump(), "null");
    EXPECT_EQ(json::Value(true).dump(), "true");
    EXPECT_EQ(json::Value(42).dump(), "42");
    EXPECT_EQ(json::Value(int64_t{-7}).dump(), "-7");
    EXPECT_EQ(json::Value(1.5).dump(), "1.5");
    EXPECT_EQ(json::Value("hi").dump(), "\"hi\"");
}

TEST(JsonTest, StringsAreEscaped)
{
    EXPECT_EQ(json::Value("a\"b\\c\nd").dump(),
              "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(json::escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder)
{
    json::Value obj{json::Object{}};
    obj.set("z", 1);
    obj.set("a", 2);
    EXPECT_EQ(obj.dump(), "{\"z\": 1, \"a\": 2}");
}

TEST(JsonTest, NestedStructuresAndIndent)
{
    json::Value arr{json::Array{}};
    arr.push(1);
    arr.push("two");
    json::Value obj{json::Object{}};
    obj.set("items", std::move(arr));
    EXPECT_EQ(obj.dump(), "{\"items\": [1, \"two\"]}");
    EXPECT_EQ(obj.dump(2), "{\n  \"items\": [\n    1,\n    \"two\"\n  ]\n}");
}

TEST(JsonTest, EmptyContainersRenderCompact)
{
    EXPECT_EQ(json::Value(json::Array{}).dump(2), "[]");
    EXPECT_EQ(json::Value(json::Object{}).dump(2), "{}");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull)
{
    EXPECT_EQ(json::Value(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(SymbolTest, InterningGivesEqualIds)
{
    Symbol a("arith.addi");
    Symbol b("arith.addi");
    Symbol c("arith.muli");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.id(), b.id());
    EXPECT_NE(a, c);
}

TEST(SymbolTest, RoundTripsText)
{
    Symbol s("memref.load");
    EXPECT_EQ(s.str(), "memref.load");
}

TEST(SymbolTest, EmptySymbolIsIdZero)
{
    Symbol empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.id(), 0u);
    EXPECT_EQ(Symbol("").id(), 0u);
}

TEST(SymbolTest, ConcurrentInterningIsConsistent)
{
    std::vector<std::thread> threads;
    std::vector<uint32_t> ids(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([t, &ids] {
            for (int i = 0; i < 200; ++i) {
                Symbol s("shared." + std::to_string(i % 13));
                if (i % 13 == 5)
                    ids[t] = s.id();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int t = 1; t < 8; ++t)
        EXPECT_EQ(ids[0], ids[t]);
}

TEST(ErrorTest, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    try {
        fatal(MsgBuilder() << "value=" << 42);
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "value=42");
    }
}

TEST(TableTest, AlignsColumns)
{
    TextTable table("demo");
    table.setHeader({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer_name", "2"});
    std::ostringstream os;
    table.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("longer_name"), std::string::npos);
    // Header and rows must align: "value" column starts at same offset.
    auto pos_header = text.find("value");
    auto pos_row = text.find("1");
    ASSERT_NE(pos_header, std::string::npos);
    ASSERT_NE(pos_row, std::string::npos);
}

TEST(TableTest, RejectsRowWidthMismatchInDebug)
{
    TextTable table("demo");
    table.setHeader({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row width");
}

TEST(RngTest, DeterministicFromSeed)
{
    Rng a(7), b(7), c(8);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(RngTest, RangeRespected)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.nextRange(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

} // namespace
} // namespace seer
