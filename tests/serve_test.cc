/**
 * Daemon-mode tests: the sharded concurrent cache, the wire protocol,
 * and an embedded OptServer driven over real sockets.
 *
 * The concurrency tests are written to run under TSan (the `tsan` CI
 * job builds this binary with -fsanitize=thread): many threads hammer
 * one StripedLru / ExternalEvalCache while metrics are read
 * concurrently. The differential tests pin the daemon's core claim —
 * a request served over the socket is byte-identical to the same
 * request run in-process, and stats agree modulo timing.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/pass_eval.h"
#include "core/server.h"
#include "core/session.h"
#include "support/socket.h"
#include "support/striped_lru.h"

namespace seer::core {
namespace {

const char *kKernel = R"(
func.func @seq_loops(%a: memref<64xi32>, %b: memref<64xi32>,
                     %c: memref<64xi32>) {
  affine.for %i = 0 to 32 {
    %v = memref.load %a[%i] : memref<64xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%i] : memref<64xi32>
  }
  affine.for %j = 0 to 32 {
    %v = memref.load %b[%j] : memref<64xi32>
    %c2 = arith.constant 2 : i32
    %w = arith.muli %v, %c2 : i32
    memref.store %w, %c[%j] : memref<64xi32>
  }
})";

/** A fast request: control rules only, minimal validation. */
ServeRequest
smallRequest()
{
    ServeRequest request;
    request.func = "seq_loops";
    request.ir_text = kKernel;
    request.use_rover = false;
    request.validation_runs = 2;
    // Never let sanitizer slowdown turn exploration time-limited:
    // byte-identity assertions need machine-speed-independent runs.
    request.time_limit_seconds = 1e6;
    return request;
}

std::string
tempPath(const char *tag)
{
    return "/tmp/seer_serve_test_" + std::string(tag) + "_" +
           std::to_string(::getpid());
}

// ---------------------------------------------------------------------
// StripedLru
// ---------------------------------------------------------------------

TEST(StripedLru, BasicLookupInsertEvict)
{
    // 4 shards x 64-byte budget: each shard holds two 25-byte entries
    // at most; the third insert into a shard evicts its LRU entry.
    StripedLru<int> lru(4, 256);
    EXPECT_EQ(lru.shardCount(), 4u);
    for (uint64_t key = 0; key < 64; ++key)
        lru.insert(key, static_cast<int>(key), 25);
    LruMetrics m = lru.metrics();
    EXPECT_EQ(m.insertions, 64u);
    EXPECT_GT(m.evictions, 0u);
    EXPECT_EQ(m.evicted_bytes, m.evictions * 25);
    EXPECT_EQ(m.entries, lru.size());
    EXPECT_LE(lru.bytes(), 256);
    // Every resident entry still maps to its own value.
    lru.forEachSorted([](uint64_t key, const int &value) {
        EXPECT_EQ(static_cast<int>(key), value);
    });
}

TEST(StripedLru, LruOrderProtectsRecentlyUsed)
{
    // One shard so the LRU order is fully observable.
    StripedLru<int> lru(1, 100);
    lru.insert(1, 1, 40);
    lru.insert(2, 2, 40);
    // Touch 1: now 2 is the eviction candidate.
    EXPECT_TRUE(lru.lookup(1).has_value());
    lru.insert(3, 3, 40);
    EXPECT_TRUE(lru.lookup(1, /*count=*/false).has_value());
    EXPECT_TRUE(lru.lookup(3, /*count=*/false).has_value());
    EXPECT_FALSE(lru.lookup(2, /*count=*/false).has_value());
}

TEST(StripedLru, OversizedEntryStaysUntilDisplaced)
{
    StripedLru<int> lru(1, 10);
    lru.insert(7, 7, 1000); // larger than the whole budget
    EXPECT_EQ(lru.size(), 1u);
    EXPECT_TRUE(lru.lookup(7).has_value());
}

TEST(StripedLru, ChargeHookObservesAllDeltas)
{
    std::atomic<int64_t> charged{0};
    {
        StripedLru<std::string> lru(
            2, 0, [&](int64_t delta) { charged += delta; });
        lru.insert(1, "a", 10);
        lru.insert(2, "b", 20);
        EXPECT_EQ(charged.load(), 30);
        lru.insert(1, "c", 15); // overwrite: delta +5
        EXPECT_EQ(charged.load(), 35);
        lru.clear();
        EXPECT_EQ(charged.load(), 0);
    }
}

TEST(StripedLru, ConcurrentHammer)
{
    // The TSan target: concurrent inserts/lookups/metrics/eviction on
    // overlapping keys must be free of data races and never lose the
    // value-follows-key invariant.
    StripedLru<uint64_t> lru(8, 64 * 1024);
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kKeys = 512;
    constexpr int kRounds = 200;
    std::vector<std::thread> threads;
    std::atomic<bool> stop{false};
    // A reader thread polls aggregate metrics while writers run.
    threads.emplace_back([&] {
        while (!stop.load()) {
            LruMetrics m = lru.metrics();
            EXPECT_EQ(m.evicted_bytes % 64, 0u);
            (void)lru.bytes();
            (void)lru.size();
        }
    });
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                for (uint64_t i = t; i < kKeys; i += kThreads) {
                    uint64_t key = i * 0x9E37 + 1;
                    if (auto hit = lru.lookup(key))
                        EXPECT_EQ(*hit, key * 2);
                    else
                        lru.insert(key, key * 2, 64);
                }
            }
        });
    }
    for (size_t i = 1; i < threads.size(); ++i)
        threads[i].join();
    stop.store(true);
    threads[0].join();
    LruMetrics m = lru.metrics();
    EXPECT_GT(m.hits + m.misses, 0u);
    EXPECT_EQ(m.bytes, m.entries * 64);
    lru.forEachSorted([](uint64_t key, const uint64_t &value) {
        EXPECT_EQ(value, key * 2);
    });
}

TEST(EvalCache, ConcurrentSessionsShareOneStore)
{
    // Many "sessions" exercising one shared cache: pass + verify
    // inserts, probes, and stats reads race benignly under TSan.
    ExternalEvalCache cache(true, {8, 32 * 1024});
    constexpr unsigned kThreads = 6;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (uint64_t i = 0; i < 300; ++i) {
                uint64_t key = (i % 100) * 7919 + t;
                if (!cache.lookupPass(key, /*count=*/true)) {
                    cache.countMiss();
                    PassOutcome outcome;
                    outcome.status = PassOutcome::Status::Rejected;
                    outcome.detail = "detail-" + std::to_string(key);
                    cache.insertPass(key, std::move(outcome));
                }
                VerifyVerdict verdict;
                verdict.result = VerifyVerdict::Result::Equivalent;
                cache.insertVerify(key, verdict);
                (void)cache.lookupVerify(key);
                if (i % 50 == 0)
                    (void)cache.stats();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    ExternalEvalStats stats = cache.stats();
    EXPECT_EQ(stats.cache_shards, 8u);
    EXPECT_GT(stats.pass_cache_hits + stats.pass_cache_misses, 0u);
    EXPECT_GT(stats.resident_entries, 0u);
}

// ---------------------------------------------------------------------
// Eviction-order determinism of the persisted form
// ---------------------------------------------------------------------

TEST(EvalCache, SaveLoadSaveIsByteStableUnderEviction)
{
    // Two caches fed the same entries in different orders (leaving
    // different LRU states behind) must persist byte-identical files:
    // serialization iterates keys in sorted order, not traffic order.
    auto fill = [](ExternalEvalCache &cache, bool reversed) {
        for (int i = 0; i < 200; ++i) {
            int n = reversed ? 199 - i : i;
            uint64_t key = static_cast<uint64_t>(n) * 7919 + 17;
            PassOutcome outcome;
            outcome.status = PassOutcome::Status::Rejected;
            outcome.detail = "entry-" + std::to_string(n);
            cache.insertPass(key, std::move(outcome));
            VerifyVerdict verdict;
            verdict.result = n % 3 == 0
                                 ? VerifyVerdict::Result::Mismatch
                                 : VerifyVerdict::Result::Equivalent;
            verdict.diag = "diag-" + std::to_string(n);
            cache.insertVerify(key, verdict);
        }
    };
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    };
    std::string path_a = tempPath("bytestable_a");
    std::string path_b = tempPath("bytestable_b");

    ExternalEvalCache forward(true, {4, 0});
    ExternalEvalCache reversed(true, {16, 0});
    fill(forward, false);
    fill(reversed, true);
    std::string error;
    ASSERT_TRUE(forward.saveFile(path_a, &error)) << error;
    ASSERT_TRUE(reversed.saveFile(path_b, &error)) << error;
    EXPECT_EQ(slurp(path_a), slurp(path_b))
        << "traffic order / shard count leaked into the save file";

    // Round trip: load into a budgeted cache, save again. The reloaded
    // file must be byte-identical — loading must not reorder entries,
    // and the load path must not evict below the loaded set here
    // (budget is ample).
    ExternalEvalCache reloaded(true, {8, 1024 * 1024});
    ASSERT_GT(reloaded.loadFile(path_a, &error), 0u) << error;
    std::string path_c = tempPath("bytestable_c");
    ASSERT_TRUE(reloaded.saveFile(path_c, &error)) << error;
    EXPECT_EQ(slurp(path_a), slurp(path_c));

    // Under a tight budget the survivor *set* is smaller, but a second
    // save of the same survivors is still stable.
    ExternalEvalCache tight(true, {2, 4 * 1024});
    (void)tight.loadFile(path_a, &error);
    std::string path_d = tempPath("bytestable_d");
    std::string path_e = tempPath("bytestable_e");
    ASSERT_TRUE(tight.saveFile(path_d, &error)) << error;
    ASSERT_TRUE(tight.saveFile(path_e, &error)) << error;
    EXPECT_EQ(slurp(path_d), slurp(path_e));
    EXPECT_GT(tight.stats().pass_evictions +
                  tight.stats().verify_evictions,
              0u)
        << "the tight budget was expected to force evictions";

    for (const std::string &p :
         {path_a, path_b, path_c, path_d, path_e})
        std::remove(p.c_str());
}

TEST(EvalCache, CorruptFileColdStartsWithHonestCounters)
{
    std::string path = tempPath("corrupt");
    {
        ExternalEvalCache cache(true, {});
        for (int i = 0; i < 5; ++i) {
            PassOutcome outcome;
            outcome.status = PassOutcome::Status::NotApplied;
            cache.insertPass(static_cast<uint64_t>(i) + 1, outcome);
        }
        std::string error;
        ASSERT_TRUE(cache.saveFile(path, &error)) << error;
    }
    // Truncate: the checksum line is gone, so the load must reject the
    // whole file and report how much it threw away.
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::string text = buffer.str();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    ExternalEvalCache cache(true, {});
    std::string error;
    EXPECT_EQ(cache.loadFile(path, &error), 0u);
    EXPECT_FALSE(error.empty());
    ExternalEvalStats stats = cache.stats();
    EXPECT_TRUE(stats.disk_load_failed);
    EXPECT_FALSE(stats.disk_load_error.empty());
    EXPECT_EQ(stats.disk_entries_loaded, 0u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripsEveryField)
{
    ServeRequest request;
    request.func = "kernel";
    request.ir_text = "line one\nline two\n\nline four";
    request.want_stats = true;
    request.use_rover = false;
    request.use_control = false;
    request.max_phases = 7;
    request.exact_datapath = false;
    request.naive_extract = true;
    request.use_laws = false;
    request.unroll_max_trip = 16;
    request.jobs = 3;
    request.match_jobs = 2;
    request.use_pass_cache = false;
    request.strict = true;
    request.deadline_seconds = 2.5;
    request.mem_budget_bytes = 123456;
    request.validation_runs = 9;
    request.time_limit_seconds = 777.5;

    ServeRequest parsed;
    std::string error;
    ASSERT_TRUE(
        parseRequest(serializeRequest(request), &parsed, &error))
        << error;
    EXPECT_EQ(parsed.func, request.func);
    EXPECT_EQ(parsed.ir_text, request.ir_text);
    EXPECT_EQ(parsed.want_stats, request.want_stats);
    EXPECT_EQ(parsed.use_rover, request.use_rover);
    EXPECT_EQ(parsed.use_control, request.use_control);
    EXPECT_EQ(parsed.max_phases, request.max_phases);
    EXPECT_EQ(parsed.exact_datapath, request.exact_datapath);
    EXPECT_EQ(parsed.naive_extract, request.naive_extract);
    EXPECT_EQ(parsed.use_laws, request.use_laws);
    EXPECT_EQ(parsed.unroll_max_trip, request.unroll_max_trip);
    EXPECT_EQ(parsed.jobs, request.jobs);
    EXPECT_EQ(parsed.match_jobs, request.match_jobs);
    EXPECT_EQ(parsed.use_pass_cache, request.use_pass_cache);
    EXPECT_EQ(parsed.strict, request.strict);
    EXPECT_EQ(parsed.deadline_seconds, request.deadline_seconds);
    EXPECT_EQ(parsed.mem_budget_bytes, request.mem_budget_bytes);
    EXPECT_EQ(parsed.validation_runs, request.validation_runs);
    EXPECT_EQ(parsed.time_limit_seconds, request.time_limit_seconds);
}

TEST(ServeProtocol, ResponseRoundTripsEveryField)
{
    ServeResponse response;
    response.exit_code = 3;
    response.degraded = true;
    response.output_ir = "func.func @f() {\n}\n";
    response.log = "; line\n; another\n";
    response.error = "";
    response.stats_json = "{\n  \"k\": 1\n}";
    response.pass_cache_hits = 11;
    response.pass_cache_misses = 22;
    response.verify_cache_hits = 33;
    response.evaluations = 44;

    ServeResponse parsed;
    std::string error;
    ASSERT_TRUE(
        parseResponse(serializeResponse(response), &parsed, &error))
        << error;
    EXPECT_EQ(parsed.exit_code, response.exit_code);
    EXPECT_EQ(parsed.degraded, response.degraded);
    EXPECT_EQ(parsed.output_ir, response.output_ir);
    EXPECT_EQ(parsed.log, response.log);
    EXPECT_EQ(parsed.error, response.error);
    EXPECT_EQ(parsed.stats_json, response.stats_json);
    EXPECT_EQ(parsed.pass_cache_hits, response.pass_cache_hits);
    EXPECT_EQ(parsed.pass_cache_misses, response.pass_cache_misses);
    EXPECT_EQ(parsed.verify_cache_hits, response.verify_cache_hits);
    EXPECT_EQ(parsed.evaluations, response.evaluations);
}

TEST(ServeProtocol, MalformedPayloadsAreRejectedNotCrashed)
{
    ServeRequest request;
    ServeResponse response;
    std::string error;
    EXPECT_FALSE(parseRequest("", &request, &error));
    EXPECT_FALSE(parseRequest("not-the-magic\n", &request, &error));
    EXPECT_FALSE(
        parseRequest("seer-req/1\nir 999999\nshort", &request, &error));
    EXPECT_FALSE(parseResponse("", &response, &error));
    EXPECT_FALSE(parseResponse("seer-resp/1\nexit 0\n", &response,
                               &error));
    // Unknown keys are skipped (forward compatibility), not fatal.
    ServeRequest forward;
    std::string text = serializeRequest(smallRequest());
    size_t pos = text.find('\n');
    text.insert(pos + 1, "future_knob 42\n");
    EXPECT_TRUE(parseRequest(text, &forward, &error)) << error;
    EXPECT_EQ(forward.func, "seq_loops");
}

// ---------------------------------------------------------------------
// In-process vs daemon differential + embedded-server behavior
// ---------------------------------------------------------------------

/** Mask wall-clock "<float>s" tokens in a summary log: the byte-
 *  identity contract covers everything except timing. */
std::string
maskTimings(const std::string &log)
{
    std::string out;
    size_t i = 0;
    while (i < log.size()) {
        if (std::isdigit(static_cast<unsigned char>(log[i]))) {
            size_t j = i;
            while (j < log.size() &&
                   (std::isdigit(static_cast<unsigned char>(log[j])) ||
                    log[j] == '.' || log[j] == 'e' || log[j] == '-'))
                ++j;
            if (j < log.size() && log[j] == 's') {
                out += "<t>";
                i = j + 1;
                continue;
            }
        }
        out += log[i++];
    }
    return out;
}

/** Send one request over the socket; asserts transport health. */
ServeResponse
roundTrip(const std::string &socket, const ServeRequest &request)
{
    std::string error;
    net::Fd fd = net::connectUnix(socket, &error);
    EXPECT_TRUE(fd.valid()) << error;
    EXPECT_EQ(net::sendFrame(fd.get(), serializeRequest(request),
                             &error),
              net::IoStatus::Ok)
        << error;
    std::string payload;
    EXPECT_EQ(net::recvFrame(fd.get(), payload, &error),
              net::IoStatus::Ok)
        << error;
    ServeResponse response;
    EXPECT_TRUE(parseResponse(payload, &response, &error)) << error;
    return response;
}

TEST(OptServer, ClientMatchesInProcessByteForByte)
{
    ServerOptions options;
    options.socket_path = tempPath("diff") + ".sock";
    options.workers = 2;
    options.quiet = true;
    OptServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ServeRequest request = smallRequest();
    request.want_stats = true;

    // In-process arm: the same runSession the daemon executes, on a
    // private cache (exactly what seer-opt without --connect runs).
    SessionEnv env;
    env.exec = ExecContext::make();
    ServeResponse local = runSession(request, env);
    ASSERT_EQ(local.exit_code, 0) << local.error;

    ServeResponse remote = roundTrip(options.socket_path, request);
    ASSERT_EQ(remote.exit_code, 0) << remote.error;

    // The core claim: byte-identical IR either way, and an identical
    // summary once its wall-clock timings are masked.
    EXPECT_EQ(local.output_ir, remote.output_ir);
    EXPECT_EQ(maskTimings(local.log), maskTimings(remote.log));
    EXPECT_EQ(local.degraded, remote.degraded);
    // Stats modulo timing: the discrete evaluation counters agree; the
    // seconds fields are wall-clock and legitimately differ.
    EXPECT_EQ(local.pass_cache_misses, remote.pass_cache_misses);
    EXPECT_EQ(local.evaluations, remote.evaluations);
    EXPECT_FALSE(local.stats_json.empty());
    EXPECT_FALSE(remote.stats_json.empty());

    // Warm pass on the daemon's shared cache: identical bytes again,
    // no fresh evaluations.
    ServeResponse warm = roundTrip(options.socket_path, request);
    ASSERT_EQ(warm.exit_code, 0) << warm.error;
    EXPECT_EQ(warm.output_ir, local.output_ir);
    EXPECT_EQ(warm.evaluations, 0u);
    EXPECT_EQ(warm.pass_cache_misses, 0u);

    server.stop();
    ServerCounters counters = server.counters();
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.failures, 0u);
}

TEST(OptServer, ConcurrentClientsAllSucceedIdentically)
{
    ServerOptions options;
    options.socket_path = tempPath("many") + ".sock";
    options.workers = 3;
    options.quiet = true;
    OptServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    constexpr unsigned kClients = 6;
    std::vector<std::string> outputs(kClients);
    std::vector<int> exits(kClients, -1);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            ServeResponse response =
                roundTrip(options.socket_path, smallRequest());
            outputs[i] = response.output_ir;
            exits[i] = response.exit_code;
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (unsigned i = 0; i < kClients; ++i) {
        EXPECT_EQ(exits[i], 0);
        EXPECT_EQ(outputs[i], outputs[0]) << "client " << i;
    }
    server.stop();
    EXPECT_EQ(server.counters().requests, kClients);
}

TEST(OptServer, MidRequestDisconnectIsContained)
{
    ServerOptions options;
    options.socket_path = tempPath("gone") + ".sock";
    options.workers = 2;
    options.quiet = true;
    OptServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Send a request, then hang up immediately: the disconnect watcher
    // cancels the session; the daemon must survive and keep serving.
    {
        net::Fd fd = net::connectUnix(options.socket_path, &error);
        ASSERT_TRUE(fd.valid()) << error;
        ServeRequest request = smallRequest();
        request.validation_runs = 8; // long enough to observe the hangup
        ASSERT_EQ(net::sendFrame(fd.get(), serializeRequest(request),
                                 &error),
                  net::IoStatus::Ok)
            << error;
    } // fd closes here, mid-request

    // A garbage frame must count a protocol error, not kill anything.
    {
        net::Fd fd = net::connectUnix(options.socket_path, &error);
        ASSERT_TRUE(fd.valid()) << error;
        ASSERT_EQ(net::sendFrame(fd.get(), "complete garbage", &error),
                  net::IoStatus::Ok);
        std::string payload;
        if (net::recvFrame(fd.get(), payload, &error) ==
            net::IoStatus::Ok) {
            ServeResponse response;
            ASSERT_TRUE(parseResponse(payload, &response, &error));
            EXPECT_EQ(response.exit_code, 1);
            EXPECT_FALSE(response.error.empty());
        }
    }

    // The server still answers a healthy client.
    ServeResponse after =
        roundTrip(options.socket_path, smallRequest());
    EXPECT_EQ(after.exit_code, 0) << after.error;

    server.stop();
    ServerCounters counters = server.counters();
    EXPECT_GE(counters.requests, 1u);
    EXPECT_EQ(counters.protocol_errors, 1u);
}

TEST(OptServer, StopIsCleanAndIdempotent)
{
    ServerOptions options;
    options.socket_path = tempPath("stop") + ".sock";
    options.quiet = true;
    {
        OptServer server(options);
        std::string error;
        ASSERT_TRUE(server.start(&error)) << error;
        EXPECT_TRUE(server.running());
        server.stop();
        EXPECT_FALSE(server.running());
        server.stop(); // idempotent
        // The socket file is gone: a second server can bind the path.
        OptServer second(options);
        ASSERT_TRUE(second.start(&error)) << error;
        second.stop();
    } // destructor after stop() must also be safe
}

TEST(OptServer, CachePersistsAcrossServerLifetimes)
{
    std::string cache_file = tempPath("persist") + ".cache";
    ServerOptions options;
    options.socket_path = tempPath("persist") + ".sock";
    options.cache_file = cache_file;
    options.save_every = 0; // save at shutdown only
    options.quiet = true;

    uint64_t first_misses = 0;
    {
        OptServer server(options);
        std::string error;
        ASSERT_TRUE(server.start(&error)) << error;
        ServeResponse response =
            roundTrip(options.socket_path, smallRequest());
        ASSERT_EQ(response.exit_code, 0) << response.error;
        first_misses = response.pass_cache_misses;
        server.stop();
        EXPECT_GE(server.counters().cache_saves, 1u);
    }
    EXPECT_GT(first_misses, 0u);
    {
        // A fresh daemon starts warm from the persisted store.
        OptServer server(options);
        std::string error;
        ASSERT_TRUE(server.start(&error)) << error;
        EXPECT_GT(server.cache()->stats().disk_entries_loaded, 0u);
        ServeResponse response =
            roundTrip(options.socket_path, smallRequest());
        ASSERT_EQ(response.exit_code, 0) << response.error;
        EXPECT_EQ(response.pass_cache_misses, 0u);
        EXPECT_EQ(response.evaluations, 0u);
        server.stop();
    }
    std::remove(cache_file.c_str());
}

} // namespace
} // namespace seer::core
