/**
 * @file
 * ROVER standalone: datapath strength reduction on one expression
 * (the Figure 4 / Figure 9 material).
 *
 * Saturates x*206 + x*52 under the ROVER rule set and extracts the
 * minimal-area implementation with the exact ("ILP") extractor,
 * printing the area model's verdict for several candidate forms.
 */
#include <iostream>

#include "egraph/extract.h"
#include "egraph/runner.h"
#include "rover/rover.h"

int
main()
{
    using namespace seer;
    using namespace seer::eg;

    EGraph egraph(rover::roverAnalysisHooks());
    TermPtr expr = parseTerm(
        "(arith.addi:i32 (arith.muli:i32 var:x const:206:i32) "
        "(arith.muli:i32 var:x const:52:i32))");
    EClassId root = egraph.addTerm(expr);
    std::cout << "input:  " << expr->str() << "\n";

    rover::RoverAreaCost area(&egraph);
    auto before = extractGreedy(egraph, root, area);
    std::cout << "area before rewriting: " << before->dag_cost
              << " um^2 (two 32-bit multipliers + adder)\n\n";

    Runner runner(egraph);
    runner.addRules(rover::roverRules());
    RunnerReport report = runner.run();
    std::cout << "saturation: " << report.total_applied
              << " rewrites applied over "
              << report.iterations.size() << " iterations, e-graph has "
              << egraph.numNodes() << " nodes / " << egraph.numClasses()
              << " classes (" << stopReasonName(report.stop) << ")\n\n";

    auto greedy = extractGreedy(egraph, root, area);
    auto exact = extractExact(egraph, root, area);
    std::cout << "greedy extraction:  area " << greedy->dag_cost
              << "\n  " << greedy->term->str() << "\n";
    std::cout << "exact extraction:   area " << exact->dag_cost
              << "\n  " << exact->term->str() << "\n";
    std::cout << "\nsavings vs input: "
              << (1.0 - exact->dag_cost / before->dag_cost) * 100
              << "% (constant multipliers decomposed into a shared "
                 "shift-add network;\nconstant shifts are free wiring "
                 "in an ASIC)\n";
    return 0;
}
