/**
 * @file
 * Quickstart: parse a small HLS kernel, super-optimize it with SEER,
 * and compare the hardware reports before and after.
 *
 *   $ ./quickstart
 *
 * Walks through the whole public API surface:
 *   ir::parseModule  -> textual IR in
 *   core::optimize   -> e-graph super-optimization
 *   core::checkModuleEquivalence -> co-simulation equivalence
 *   hls::evaluate    -> cycles / area / power of both designs
 */
#include <iostream>

#include "core/seer.h"
#include "core/verify.h"
#include "hls/hls.h"
#include "ir/parser.h"
#include "ir/printer.h"

int
main()
{
    using namespace seer;

    // A C-like kernel, already lowered to the affine/memref form a
    // front end such as Polygeist would produce:
    //
    //   for (i = 0; i < 64; i++) tmp[i] = 3 * a[i];
    //   for (j = 0; j < 64; j++) out[j] = tmp[j] + a[j];
    const char *source = R"(
func.func @kernel(%a: memref<64xi32>, %tmp: memref<64xi32>,
                  %out: memref<64xi32>) {
  %c3 = arith.constant 3 : i32
  affine.for %i = 0 to 64 {
    %v = memref.load %a[%i] : memref<64xi32>
    %t = arith.muli %v, %c3 : i32
    memref.store %t, %tmp[%i] : memref<64xi32>
  }
  affine.for %j = 0 to 64 {
    %t = memref.load %tmp[%j] : memref<64xi32>
    %v = memref.load %a[%j] : memref<64xi32>
    %s = arith.addi %t, %v : i32
    memref.store %s, %out[%j] : memref<64xi32>
  }
})";

    ir::Module input = ir::parseModule(source);
    std::cout << "--- input program ---\n" << ir::toString(input);

    // Run the super-optimizer: control rules (loop fusion, memory
    // forwarding, ...) interleaved with ROVER datapath rewrites.
    core::SeerResult result = core::optimize(input, "kernel");
    std::cout << "\n--- SEER output ---\n" << ir::toString(result.module);

    std::cout << "\ne-graph explored: " << result.stats.egraph_nodes
              << " nodes / " << result.stats.egraph_classes
              << " classes, " << result.stats.unions_applied
              << " rewrites applied in " << result.stats.total_seconds
              << "s\n";

    // The two programs must agree on every workload.
    std::string diag;
    bool equivalent = core::checkModuleEquivalence(
        input, result.module, "kernel", {}, &diag);
    std::cout << "equivalence check: "
              << (equivalent ? "PASS" : "FAIL " + diag) << "\n";

    // Compare the hardware the HLS model would build. The baseline gets
    // no pragmas; the SEER design assumes pipelining (Section 4.6).
    auto evaluate = [&](const ir::Module &module, bool pipeline) {
        std::vector<ir::Buffer> buffers;
        std::vector<ir::RtValue> args;
        ir::Block &body = module.firstFunc()->region(0).block();
        for (size_t i = 0; i < body.numArgs(); ++i)
            buffers.emplace_back(body.arg(i).type());
        for (size_t i = 0; i < buffers.size(); ++i) {
            for (size_t j = 0; j < buffers[i].ints.size(); ++j)
                buffers[i].ints[j] = static_cast<int64_t>(j * 7 % 100);
            args.push_back(&buffers[i]);
        }
        hls::HlsOptions options;
        options.schedule.pipeline_loops = pipeline;
        return hls::evaluate(module, "kernel", std::move(args), options);
    };
    hls::HlsReport before = evaluate(input, false);
    hls::HlsReport after = evaluate(result.module, true);

    std::cout << "\n              cycles    area(um2)   power(mW)\n";
    std::cout << "baseline:     " << before.total_cycles << "      "
              << before.area_um2 << "      " << before.power_mw << "\n";
    std::cout << "SEER:         " << after.total_cycles << "       "
              << after.area_um2 << "      " << after.power_mw << "\n";
    std::cout << "speedup:      "
              << static_cast<double>(before.total_cycles) /
                     static_cast<double>(after.total_cycles)
              << "x\n";
    return equivalent ? 0 : 1;
}
