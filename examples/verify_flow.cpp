/**
 * @file
 * The translation-validation flow (Section 4.7): optimize a benchmark,
 * then discharge one equivalence check per recorded rewrite plus an
 * end-to-end check, printing the resulting certificate summary.
 *
 *   $ ./verify_flow [benchmark-name]   (default: seq_loops)
 */
#include <iostream>

#include "benchmarks/benchmarks.h"
#include "core/seer.h"
#include "core/verify.h"

int
main(int argc, char **argv)
{
    using namespace seer;

    const bench::Benchmark &benchmark =
        bench::findBenchmark(argc > 1 ? argv[1] : "seq_loops");
    ir::Module input = bench::parseBenchmark(benchmark);

    core::SeerOptions options;
    options.unroll_max_trip = benchmark.unroll_max_trip;
    core::SeerResult result =
        core::optimize(input, benchmark.func, options);
    std::cout << "optimized " << benchmark.name << ": "
              << result.stats.records.size()
              << " rewrites were applied while exploring "
              << result.stats.egraph_nodes << " e-nodes\n\n";

    // Per-rewrite translation validation: each recorded union is an
    // equivalence claim between two concrete SeerLang terms; both sides
    // are emitted as snippet functions and co-executed.
    core::VerifyOptions verify_options;
    verify_options.runs = 3;
    core::VerifyReport report =
        core::verifyRecords(result.stats.records, verify_options);
    std::cout << "per-rewrite checks: " << report.passed << " passed, "
              << report.inconclusive << " inconclusive, "
              << report.failures.size() << " failed (of "
              << report.total_checks << ")\n";
    for (const std::string &failure : report.failures)
        std::cout << "  FAILURE: " << failure << "\n";

    // End-to-end: the whole optimized module against the original on
    // the benchmark's own workload distribution.
    std::string diag;
    bool equivalent = core::checkModuleEquivalence(
        input, result.module, benchmark.func, benchmark.prepare, {},
        &diag);
    std::cout << "end-to-end check:   "
              << (equivalent ? "PASS" : "FAIL: " + diag) << "\n";

    bool certified = report.ok() && equivalent;
    std::cout << "\ncertificate: "
              << (certified
                      ? "original == optimized (chain of "
                        "per-rewrite equivalences + end-to-end check)"
                      : "NOT ESTABLISHED")
              << "\n";
    return certified ? 0 : 1;
}
