/**
 * @file
 * The Figure 8 walkthrough, step by step and by hand: build an e-graph
 * from a two-loop program, apply the internal seq rules and the dynamic
 * loop-fusion rule, watch the fused loop join the matched e-class, and
 * extract with the latency cost.
 *
 * This example drives the e-graph layers directly (EGraph / Runner /
 * extraction) rather than the one-call core::optimize, showing how the
 * orchestration works under the hood.
 */
#include <iostream>

#include "core/cost.h"
#include "core/external_rules.h"
#include "egraph/extract.h"
#include "egraph/runner.h"
#include "hls/hls.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "rover/rover.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"

int
main()
{
    using namespace seer;

    const char *source = R"(
func.func @two_loops(%a: memref<32xi32>, %b: memref<32xi32>,
                     %c: memref<32xi32>) {
  affine.for %i = 0 to 32 {
    %v = memref.load %a[%i] : memref<32xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%i] : memref<32xi32>
  }
  affine.for %j = 0 to 32 {
    %v = memref.load %b[%j] : memref<32xi32>
    %u = memref.load %a[%j] : memref<32xi32>
    %s = arith.addi %v, %u : i32
    memref.store %s, %c[%j] : memref<32xi32>
  }
})";
    ir::Module module = ir::parseModule(source);
    ir::Operation *func = module.firstFunc();

    // Step 1-3 of Figure 5: translate to SeerLang and seed an e-graph.
    sl::Translation translation = sl::funcToTerm(*func);
    std::cout << "SeerLang term (truncated):\n  "
              << translation.term->str().substr(0, 200) << "...\n\n";

    eg::EGraph egraph(rover::roverAnalysisHooks());
    eg::EClassId root = egraph.addTerm(translation.term);
    egraph.rebuild();
    std::cout << "initial e-graph: " << egraph.numNodes() << " nodes, "
              << egraph.numClasses() << " classes\n";

    // The shared context carries the loop-constraint registry, seeded
    // by one call to the HLS schedule oracle.
    auto context = std::make_shared<core::ExternalRuleContext>();
    {
        hls::OperatorLibrary lib;
        hls::ScheduleOptions options;
        options.pipeline_loops = true;
        hls::FuncSchedule schedule =
            hls::scheduleFunc(*func, lib, options);
        for (const auto &[loop_id, op] : translation.loops) {
            core::LoopRegistryEntry entry;
            entry.constraints = schedule.loops.at(op);
            context->registry[loop_id] = entry;
            std::cout << "  oracle: loop " << loop_id
                      << " II=" << entry.constraints.ii
                      << " l=" << entry.constraints.latency
                      << " N=" << entry.constraints.trip.value_or(-1)
                      << "\n";
        }
    }

    // Steps 4-6: run the internal seq rules plus the dynamic external
    // rules (loop fusion among them).
    eg::Runner runner(egraph);
    runner.addRules(core::seqRules());
    runner.addRules(core::controlRules(context));
    eg::RunnerReport report = runner.run();
    std::cout << "\nafter control rules: " << egraph.numNodes()
              << " nodes, " << egraph.numClasses() << " classes, "
              << report.total_applied << " unions ("
              << eg::stopReasonName(report.stop) << ")\n";
    for (const auto &record : report.records) {
        if (record.rule == "loop-fusion")
            std::cout << "  loop-fusion fired: new loop unioned into "
                         "the (seq loop1 loop2) class\n";
    }

    // Step 7: extract with the control-latency cost (Eqn 3).
    core::LatencyCost latency(context->registry);
    auto extraction = eg::extractGreedy(egraph, root, latency);
    std::cout << "\nextracted latency cost: " << extraction->tree_cost
              << "\n";

    // Step 8: back to IR.
    sl::EmitSpec spec{translation.func_name, translation.args};
    ir::Module optimized = sl::termToFunc(extraction->term, spec);
    std::cout << "\n--- extracted program ---\n"
              << ir::toString(optimized);
    return 0;
}
