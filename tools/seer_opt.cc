/**
 * @file
 * seer-opt: the command-line driver for the SEER super-optimizer.
 *
 *   seer-opt kernel.seer                 optimize and print the result
 *   seer-opt --verify kernel.seer        + translation validation
 *   seer-opt --report kernel.seer        + before/after HLS PPA report
 *   seer-opt --passes "loop-fusion,canonicalize" kernel.seer
 *                                        run a fixed pass pipeline
 *                                        instead (the Figure 1 baseline)
 *
 * The input format is this repo's textual IR (see ir/parser.h); write
 * kernels the way `examples/quickstart.cpp` does.
 */
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/seer.h"
#include "core/verify.h"
#include "hls/hls.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/pass.h"
#include "support/error.h"
#include "support/exec_context.h"
#include "support/fault_inject.h"

namespace {

struct CliOptions
{
    std::string input_file;
    std::string func_name; // empty: first function
    std::string fixed_passes; // non-empty: run a pipeline, not SEER
    std::string stats_file;   // non-empty: dump JSON stats ("-" = stderr)
    bool verify = false;
    bool report = false;
    bool quiet = false;
    std::optional<seer::FaultPlan> fault_plan;
    seer::core::SeerOptions seer;
};

void
usage()
{
    std::cerr <<
        "usage: seer-opt [options] <input.seer>\n"
        "\n"
        "options (value-taking flags accept both '--flag V' and "
        "'--flag=V'):\n"
        "  --func NAME        function to optimize (default: first)\n"
        "  --no-rover         disable datapath rules (the paper's "
        "SEER (C))\n"
        "  --no-control       disable control rules (ROVER only)\n"
        "  --greedy-datapath  greedy instead of exact Eqn-4 extraction\n"
        "  --extract MODE     extraction mode: 'exact' (default;\n"
        "                     branch-and-bound Eqn-4 datapath), 'greedy'\n"
        "                     (same as --greedy-datapath), or 'naive'\n"
        "                     (greedy with from-scratch bounds and no\n"
        "                     incremental cost analyses — the reference\n"
        "                     arm; extracted terms are bit-identical to\n"
        "                     'greedy')\n"
        "  --oracle           re-invoke the scheduler for new loops\n"
        "                     instead of the Section 4.6 laws\n"
        "  --unroll N         explore complete unrolling up to trip N\n"
        "  --phases N         interleaved control/data phases\n"
        "  --passes LIST      run a fixed comma-separated pass pipeline\n"
        "                     instead of the e-graph (phase-order "
        "baseline)\n"
        "  --verify           translation-validate every rewrite and\n"
        "                     co-simulate end to end\n"
        "  --report           print before/after HLS PPA estimates\n"
        "  --stats FILE       write per-rule/per-iteration scheduler\n"
        "                     stats as JSON (FILE '-' = stderr); the\n"
        "                     external_eval section reports pass/verify\n"
        "                     cache hit rates and per-stage timing\n"
        "  -j, --jobs N       worker threads for e-matching and\n"
        "                     external-pass evaluation; results are\n"
        "                     bit-identical for every N (default 1)\n"
        "  --match-jobs N     worker threads for the sharded e-matching\n"
        "                     phase alone (default: inherit --jobs);\n"
        "                     same bit-identical guarantee\n"
        "  --pass-cache FILE  persist the pass-outcome/verification\n"
        "                     cache across runs (loaded at start, saved\n"
        "                     at exit; a corrupt file cold-starts)\n"
        "  --no-pass-cache    disable cross-iteration memoization of\n"
        "                     external-pass outcomes (cold baseline;\n"
        "                     the optimization result is identical)\n"
        "  --deadline S       whole-run wall-clock budget in seconds;\n"
        "                     exploration is cut short when it expires\n"
        "  --mem-budget B     whole-run memory budget in bytes (k/m/g\n"
        "                     suffixes accepted); a breach cancels\n"
        "                     exploration and degrades to the best\n"
        "                     result found within budget (exit 3), and\n"
        "                     per-subsystem usage lands in the --stats\n"
        "                     'resource' section\n"
        "  --fault-plan P     chaos: arm a seeded fault-injection plan\n"
        "                     (format seed=N;rate=R;fixed=point@n,...)\n"
        "                     around the run; see DESIGN.md for the\n"
        "                     injection-point matrix\n"
        "  --strict           fail fast on the first internal error\n"
        "                     instead of recovering (pre-PR2 behavior)\n"
        "  --quiet            suppress the output program\n"
        "\n"
        "exit codes:\n"
        "  0  success\n"
        "  1  failure (bad input IR, verification failure, --strict "
        "fault)\n"
        "  2  usage error\n"
        "  3  success, but the run degraded (recovered faults, memory\n"
        "     budget breach, or SIGINT/SIGTERM cancellation; output is\n"
        "     still verified IR — see the --stats health section)\n";
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream stream(text);
    std::string piece;
    while (std::getline(stream, piece, ',')) {
        if (!piece.empty())
            out.push_back(piece);
    }
    return out;
}

/** Faulty dynamic rule (hidden --inject-crash-rule flag): the chaos
 *  hook used by the robustness tests and the CI fuzz-smoke job. It
 *  throws on every application except the second, where it returns a
 *  giant junk term instead, so one run exercises the full containment
 *  chain: per-application failure recovery, budget-explosion phase
 *  rollback, circuit-breaker quarantine, and degraded-mode emission
 *  (and under --strict, the very first application fails the run with
 *  the original error). */
seer::eg::Rewrite
crashRule()
{
    auto calls = std::make_shared<size_t>(0);
    return seer::eg::makeDynRewrite(
        "inject-crash", "?x",
        [calls](seer::eg::EGraph &, const seer::eg::Match &)
            -> std::optional<seer::eg::TermPtr> {
            if ((*calls)++ == 1) {
                // Balanced binary tree of ~80k distinct junk nodes:
                // far beyond 4 x the default 16k node budget.
                std::vector<seer::eg::TermPtr> level;
                level.reserve(40000);
                for (size_t i = 0; i < 40000; ++i) {
                    level.push_back(seer::eg::makeTerm(
                        seer::Symbol("junk" + std::to_string(i)), {}));
                }
                while (level.size() > 1) {
                    std::vector<seer::eg::TermPtr> next;
                    next.reserve(level.size() / 2 + 1);
                    for (size_t i = 0; i + 1 < level.size(); i += 2) {
                        next.push_back(seer::eg::makeTerm(
                            seer::Symbol("junkpair"),
                            {level[i], level[i + 1]}));
                    }
                    if (level.size() % 2)
                        next.push_back(level.back());
                    level = std::move(next);
                }
                return level[0];
            }
            seer::fatal("injected crash (--inject-crash-rule)");
        });
}

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        std::string arg = args[i];
        // GNU-style --flag=value: split so both spellings hit the same
        // validation (a bad number in either reports "bad number", not
        // "unknown option").
        std::optional<std::string> inline_value;
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
            size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
            }
        }
        bool bad_value = false;
        auto next = [&]() -> std::string {
            if (inline_value) {
                std::string value = *inline_value;
                inline_value.reset();
                return value;
            }
            if (i + 1 >= args.size()) {
                std::cerr << "seer-opt: missing value for " << arg
                          << "\n";
                bad_value = true;
                return "";
            }
            return args[++i];
        };
        auto next_int = [&]() -> int64_t {
            std::string text = next();
            if (bad_value)
                return 0;
            try {
                size_t used = 0;
                int64_t value = std::stoll(text, &used);
                if (used != text.size())
                    throw std::invalid_argument(text);
                return value;
            } catch (const std::exception &) {
                std::cerr << "seer-opt: bad integer '" << text
                          << "' for " << arg << "\n";
                bad_value = true;
                return 0;
            }
        };
        auto next_double = [&]() -> double {
            std::string text = next();
            if (bad_value)
                return 0;
            try {
                size_t used = 0;
                double value = std::stod(text, &used);
                if (used != text.size())
                    throw std::invalid_argument(text);
                return value;
            } catch (const std::exception &) {
                std::cerr << "seer-opt: bad number '" << text
                          << "' for " << arg << "\n";
                bad_value = true;
                return 0;
            }
        };
        if (arg == "--func") {
            options.func_name = next();
        } else if (arg == "--no-rover") {
            options.seer.use_rover = false;
        } else if (arg == "--no-control") {
            options.seer.use_control = false;
        } else if (arg == "--greedy-datapath") {
            options.seer.exact_datapath = false;
        } else if (arg == "--extract") {
            std::string mode = next();
            if (bad_value)
                return false;
            if (mode == "exact") {
                options.seer.exact_datapath = true;
                options.seer.naive_extract = false;
            } else if (mode == "greedy") {
                options.seer.exact_datapath = false;
                options.seer.naive_extract = false;
            } else if (mode == "naive") {
                options.seer.exact_datapath = false;
                options.seer.naive_extract = true;
            } else {
                std::cerr << "seer-opt: bad --extract mode '" << mode
                          << "' (expected exact, greedy, or naive)\n";
                return false;
            }
        } else if (arg == "--oracle") {
            options.seer.use_laws = false;
        } else if (arg == "--unroll") {
            options.seer.unroll_max_trip = next_int();
        } else if (arg == "--phases") {
            options.seer.max_phases = static_cast<int>(next_int());
        } else if (arg == "--passes") {
            options.fixed_passes = next();
        } else if (arg == "--verify") {
            options.verify = true;
        } else if (arg == "--report") {
            options.report = true;
        } else if (arg == "--stats") {
            options.stats_file = next();
        } else if (arg == "--match-jobs") {
            int64_t jobs = next_int();
            if (!bad_value && jobs < 1) {
                std::cerr << "seer-opt: --match-jobs must be >= 1\n";
                return 2;
            }
            options.seer.match_jobs = static_cast<unsigned>(jobs);
        } else if (arg == "-j" || arg == "--jobs") {
            int64_t jobs = next_int();
            if (!bad_value && jobs < 1) {
                std::cerr << "seer-opt: --jobs must be >= 1\n";
                return false;
            }
            options.seer.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--pass-cache") {
            options.seer.pass_cache_file = next();
        } else if (arg == "--no-pass-cache") {
            options.seer.use_pass_cache = false;
        } else if (arg == "--deadline") {
            options.seer.deadline_seconds = next_double();
        } else if (arg == "--mem-budget") {
            std::string text = next();
            if (bad_value)
                return false;
            uint64_t scale = 1;
            if (!text.empty()) {
                char suffix = text.back();
                if (suffix == 'k' || suffix == 'K')
                    scale = 1024ull;
                else if (suffix == 'm' || suffix == 'M')
                    scale = 1024ull * 1024;
                else if (suffix == 'g' || suffix == 'G')
                    scale = 1024ull * 1024 * 1024;
                if (scale != 1)
                    text.pop_back();
            }
            try {
                size_t used = 0;
                uint64_t value = std::stoull(text, &used);
                if (used != text.size() || text.empty())
                    throw std::invalid_argument(text);
                options.seer.mem_budget_bytes = value * scale;
            } catch (const std::exception &) {
                std::cerr << "seer-opt: bad byte count '" << text
                          << "' for " << arg << "\n";
                return false;
            }
        } else if (arg == "--fault-plan") {
            std::string text = next();
            if (bad_value)
                return false;
            auto plan = seer::FaultPlan::parse(text);
            if (!plan) {
                std::cerr << "seer-opt: bad --fault-plan '" << text
                          << "' (expected "
                             "seed=N;rate=R;fixed=point@n,...)\n";
                return false;
            }
            options.fault_plan = *plan;
        } else if (arg == "--strict") {
            options.seer.strict = true;
        } else if (arg == "--inject-crash-rule") {
            // Hidden: chaos-inject an always-throwing dynamic rule.
            options.seer.extra_control_rules.push_back(crashRule());
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "seer-opt: unknown option " << arg << "\n";
            return false;
        } else if (options.input_file.empty()) {
            options.input_file = arg;
        } else {
            std::cerr << "seer-opt: multiple input files given\n";
            return false;
        }
        if (bad_value)
            return false;
        if (inline_value) {
            std::cerr << "seer-opt: option " << arg
                      << " does not take a value\n";
            return false;
        }
    }
    if (options.input_file.empty()) {
        std::cerr << "seer-opt: no input file given\n";
        return false;
    }
    return true;
}

seer::hls::HlsReport
evaluateWithZeros(const seer::ir::Module &module,
                  const std::string &func_name, bool pipeline)
{
    using namespace seer;
    ir::Block &body =
        module.lookupFunc(func_name)->region(0).block();
    std::vector<ir::Buffer> buffers;
    std::vector<ir::RtValue> args;
    for (size_t i = 0; i < body.numArgs(); ++i) {
        ir::Type t = body.arg(i).type();
        if (!t.isMemRef())
            fatal("--report requires memref-only signatures");
        buffers.emplace_back(t);
    }
    // A deterministic non-trivial workload.
    for (auto &buffer : buffers) {
        for (size_t j = 0; j < buffer.ints.size(); ++j)
            buffer.ints[j] = static_cast<int64_t>((j * 31 + 7) % 97);
        for (size_t j = 0; j < buffer.floats.size(); ++j)
            buffer.floats[j] = 0.25 * static_cast<double>(j % 17) - 2;
    }
    for (auto &buffer : buffers)
        args.push_back(&buffer);
    hls::HlsOptions hls_options;
    hls_options.schedule.pipeline_loops = pipeline;
    return hls::evaluate(module, func_name, std::move(args),
                         hls_options);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace seer;

    CliOptions options;
    if (!parseArgs(argc, argv, options)) {
        usage();
        return 2;
    }
    // Ctrl-C cancels cooperatively: the run winds down through the
    // degraded path and still reports stats (exit 3), a second signal
    // kills the process outright.
    seer::installSignalCancellation();

    std::ifstream file(options.input_file);
    if (!file) {
        std::cerr << "cannot open " << options.input_file << "\n";
        return 2;
    }
    std::stringstream text;
    text << file.rdbuf();

    try {
        ir::Module input = ir::parseModule(text.str());
        ir::verifyOrDie(input);
        if (options.func_name.empty()) {
            ir::Operation *first = input.firstFunc();
            if (!first)
                fatal("no function in input");
            options.func_name = first->strAttr("sym_name");
        }

        ir::Module output;
        core::SeerResult result;
        bool degraded = false;
        if (!options.fixed_passes.empty()) {
            // The phase-ordered baseline: a fixed pipeline.
            if (!options.stats_file.empty())
                std::cerr << "; note: --stats ignored with --passes "
                             "(no e-graph runs)\n";
            output = ir::cloneModule(input);
            passes::runPipeline(output,
                                splitList(options.fixed_passes));
            ir::verifyOrDie(output);
        } else {
            std::optional<ScopedFaultPlan> chaos;
            if (options.fault_plan)
                chaos.emplace(*options.fault_plan);
            result = core::optimize(input, options.func_name,
                                    options.seer);
            chaos.reset();
            output = ir::cloneModule(result.module);
            degraded = result.stats.degraded;
            if (degraded) {
                std::cerr << "; DEGRADED: recovered from "
                          << result.stats.recovered_errors.size()
                          << " error(s), "
                          << result.stats.phase_rollbacks
                          << " phase rollback(s), "
                          << result.stats.quarantined_rules.size()
                          << " quarantined rule(s); output is still "
                             "verified IR\n";
            }
            if (result.stats.deadline_hit)
                std::cerr << "; deadline hit: exploration cut short\n";
            if (!result.stats.cancel_reason.empty() &&
                result.stats.cancel_reason != "deadline") {
                std::cerr << "; canceled ("
                          << result.stats.cancel_reason
                          << "): degraded to the best result found\n";
            }
            size_t exhausted = 0;
            for (const core::ExtractionPhaseStats &phase :
                 result.stats.extraction)
                exhausted += phase.budget_exhaustions;
            if (exhausted > 0) {
                std::cerr << "; datapath extraction hit its search "
                             "budget "
                          << exhausted
                          << " time(s): result is best-effort, not "
                             "proven exact\n";
            }
            std::cerr << "; e-graph: " << result.stats.egraph_nodes
                      << " nodes, " << result.stats.egraph_classes
                      << " classes, " << result.stats.unions_applied
                      << " rewrites, "
                      << result.stats.total_seconds << "s total ("
                      << result.stats.time_in_passes_seconds
                      << "s in passes)\n";
            const core::ExternalEvalStats &ev =
                result.stats.external_eval;
            std::cerr << "; pass cache: " << ev.pass_cache_hits
                      << " hits, " << ev.pass_cache_misses
                      << " misses, " << ev.evaluations
                      << " evaluations (" << ev.candidates_deduped
                      << " deduped, " << ev.verify_cache_hits
                      << " verify hits)\n";
            if (!options.stats_file.empty()) {
                std::string text = core::toJson(result.stats).dump(2);
                text += "\n";
                if (options.stats_file == "-") {
                    std::cerr << text;
                } else {
                    std::ofstream stats_out(options.stats_file);
                    if (!stats_out)
                        fatal("cannot open " + options.stats_file);
                    stats_out << text;
                }
            }
        }

        if (!options.quiet)
            ir::print(output, std::cout);

        if (options.verify) {
            std::string diag;
            bool ok = core::checkModuleEquivalence(
                input, output, options.func_name, {}, &diag);
            std::cerr << "; end-to-end equivalence: "
                      << (ok ? "PASS" : "FAIL " + diag) << "\n";
            if (!options.fixed_passes.empty()) {
                if (!ok)
                    return 1;
            } else {
                core::VerifyReport report =
                    core::verifyRecords(result.stats.records);
                std::cerr << "; translation validation: "
                          << report.passed << "/"
                          << report.total_checks << " passed, "
                          << report.inconclusive << " inconclusive, "
                          << report.failures.size() << " failed\n";
                for (const std::string &failure : report.failures)
                    std::cerr << ";   " << failure << "\n";
                if (!ok || !report.ok())
                    return 1;
            }
        }

        if (options.report) {
            hls::HlsReport before =
                evaluateWithZeros(input, options.func_name, false);
            hls::HlsReport after =
                evaluateWithZeros(output, options.func_name, true);
            std::cerr << "; baseline: " << before.total_cycles
                      << " cycles, " << before.area_um2 << " um2, "
                      << before.power_mw << " mW\n";
            std::cerr << "; optimized: " << after.total_cycles
                      << " cycles, " << after.area_um2 << " um2, "
                      << after.power_mw << " mW\n";
            std::cerr << "; speedup: "
                      << static_cast<double>(before.total_cycles) /
                             static_cast<double>(after.total_cycles)
                      << "x\n";
        }
        if (degraded)
            return 3;
    } catch (const FatalError &err) {
        std::cerr << "seer-opt: " << err.what() << "\n";
        return 1;
    } catch (const std::exception &err) {
        // Nothing below main should leak a non-FatalError exception;
        // if one does, still fail with a one-line diagnostic instead
        // of std::terminate.
        std::cerr << "seer-opt: internal error: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
