/**
 * @file
 * seer-opt: the command-line driver for the SEER super-optimizer.
 *
 *   seer-opt kernel.seer                 optimize and print the result
 *   seer-opt --verify kernel.seer        + translation validation
 *   seer-opt --report kernel.seer        + before/after HLS PPA report
 *   seer-opt --passes "loop-fusion,canonicalize" kernel.seer
 *                                        run a fixed pass pipeline
 *                                        instead (the Figure 1 baseline)
 *
 * The input format is this repo's textual IR (see ir/parser.h); write
 * kernels the way `examples/quickstart.cpp` does.
 */
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/seer.h"
#include "core/session.h"
#include "core/verify.h"
#include "hls/hls.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/pass.h"
#include "support/error.h"
#include "support/exec_context.h"
#include "support/fault_inject.h"
#include "support/socket.h"
#include "tools/cli_common.h"

namespace {

struct CliOptions
{
    std::string input_file;
    std::string func_name; // empty: first function
    std::string fixed_passes; // non-empty: run a pipeline, not SEER
    std::string stats_file;   // non-empty: dump JSON stats ("-" = stderr)
    std::string connect_socket; // non-empty: dispatch to a seer-optd
    bool verify = false;
    bool report = false;
    bool quiet = false;
    std::optional<seer::FaultPlan> fault_plan;
    seer::core::SeerOptions seer;
};

void
usage()
{
    std::cerr <<
        "usage: seer-opt [options] <input.seer>\n"
        "\n"
        "options (value-taking flags accept both '--flag V' and "
        "'--flag=V'):\n"
        "  --func NAME        function to optimize (default: first)\n"
        "  --no-rover         disable datapath rules (the paper's "
        "SEER (C))\n"
        "  --no-control       disable control rules (ROVER only)\n"
        "  --greedy-datapath  greedy instead of exact Eqn-4 extraction\n"
        "  --extract MODE     extraction mode: 'exact' (default;\n"
        "                     branch-and-bound Eqn-4 datapath), 'greedy'\n"
        "                     (same as --greedy-datapath), or 'naive'\n"
        "                     (greedy with from-scratch bounds and no\n"
        "                     incremental cost analyses — the reference\n"
        "                     arm; extracted terms are bit-identical to\n"
        "                     'greedy')\n"
        "  --oracle           re-invoke the scheduler for new loops\n"
        "                     instead of the Section 4.6 laws\n"
        "  --unroll N         explore complete unrolling up to trip N\n"
        "  --phases N         interleaved control/data phases\n"
        "  --passes LIST      run a fixed comma-separated pass pipeline\n"
        "                     instead of the e-graph (phase-order "
        "baseline)\n"
        "  --verify           translation-validate every rewrite and\n"
        "                     co-simulate end to end\n"
        "  --report           print before/after HLS PPA estimates\n"
        "  --stats FILE       write per-rule/per-iteration scheduler\n"
        "                     stats as JSON (FILE '-' = stderr); the\n"
        "                     external_eval section reports pass/verify\n"
        "                     cache hit rates and per-stage timing\n"
        "  -j, --jobs N       worker threads for e-matching and\n"
        "                     external-pass evaluation; results are\n"
        "                     bit-identical for every N (default 1)\n"
        "  --match-jobs N     worker threads for the sharded e-matching\n"
        "                     phase alone (default: inherit --jobs);\n"
        "                     same bit-identical guarantee\n"
        << seer::cli::scheduleFlagsUsage() <<
        "  --pass-cache FILE  persist the pass-outcome/verification\n"
        "                     cache across runs (loaded at start, saved\n"
        "                     at exit; a corrupt file cold-starts)\n"
        "  --no-pass-cache    disable cross-iteration memoization of\n"
        "                     external-pass outcomes (cold baseline;\n"
        "                     the optimization result is identical)\n"
        "  --connect SOCK     dispatch the request to a running\n"
        "                     seer-optd on unix socket SOCK (shared\n"
        "                     warm cache; byte-identical to running\n"
        "                     in-process). Falls back to in-process\n"
        "                     when SOCK does not exist. Incompatible\n"
        "                     with --passes/--fault-plan/--pass-cache\n"
        "  --deadline S       whole-run wall-clock budget in seconds;\n"
        "                     exploration is cut short when it expires\n"
        "  --time-limit S     egg-runner wall-clock limit per\n"
        "                     saturation (default 10). Raise it when\n"
        "                     results must not depend on machine\n"
        "                     speed: a time-limited exploration stops\n"
        "                     wherever the clock caught it\n"
        "  --mem-budget B     whole-run memory budget in bytes (k/m/g\n"
        "                     suffixes accepted); a breach cancels\n"
        "                     exploration and degrades to the best\n"
        "                     result found within budget (exit 3), and\n"
        "                     per-subsystem usage lands in the --stats\n"
        "                     'resource' section\n"
        "  --fault-plan P     chaos: arm a seeded fault-injection plan\n"
        "                     (format seed=N;rate=R;fixed=point@n,...)\n"
        "                     around the run; see DESIGN.md for the\n"
        "                     injection-point matrix\n"
        "  --strict           fail fast on the first internal error\n"
        "                     instead of recovering (pre-PR2 behavior)\n"
        "  --quiet            suppress the output program\n"
        "\n"
        "exit codes:\n"
        "  0  success\n"
        "  1  failure (bad input IR, verification failure, --strict "
        "fault)\n"
        "  2  usage error\n"
        "  3  success, but the run degraded (recovered faults, memory\n"
        "     budget breach, or SIGINT/SIGTERM cancellation; output is\n"
        "     still verified IR — see the --stats health section)\n";
}

/** Faulty dynamic rule (hidden --inject-crash-rule flag): the chaos
 *  hook used by the robustness tests and the CI fuzz-smoke job. It
 *  throws on every application except the second, where it returns a
 *  giant junk term instead, so one run exercises the full containment
 *  chain: per-application failure recovery, budget-explosion phase
 *  rollback, circuit-breaker quarantine, and degraded-mode emission
 *  (and under --strict, the very first application fails the run with
 *  the original error). */
seer::eg::Rewrite
crashRule()
{
    auto calls = std::make_shared<size_t>(0);
    return seer::eg::makeDynRewrite(
        "inject-crash", "?x",
        [calls](seer::eg::EGraph &, const seer::eg::Match &)
            -> std::optional<seer::eg::TermPtr> {
            if ((*calls)++ == 1) {
                // Balanced binary tree of ~80k distinct junk nodes:
                // far beyond 4 x the default 16k node budget.
                std::vector<seer::eg::TermPtr> level;
                level.reserve(40000);
                for (size_t i = 0; i < 40000; ++i) {
                    level.push_back(seer::eg::makeTerm(
                        seer::Symbol("junk" + std::to_string(i)), {}));
                }
                while (level.size() > 1) {
                    std::vector<seer::eg::TermPtr> next;
                    next.reserve(level.size() / 2 + 1);
                    for (size_t i = 0; i + 1 < level.size(); i += 2) {
                        next.push_back(seer::eg::makeTerm(
                            seer::Symbol("junkpair"),
                            {level[i], level[i + 1]}));
                    }
                    if (level.size() % 2)
                        next.push_back(level.back());
                    level = std::move(next);
                }
                return level[0];
            }
            seer::fatal("injected crash (--inject-crash-rule)");
        });
}

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    seer::cli::ArgCursor args("seer-opt", argc, argv);
    while (args.nextArg()) {
        const std::string &arg = args.arg();
        if (arg == "--func") {
            options.func_name = args.value();
        } else if (arg == "--no-rover") {
            options.seer.use_rover = false;
        } else if (arg == "--no-control") {
            options.seer.use_control = false;
        } else if (arg == "--greedy-datapath") {
            options.seer.exact_datapath = false;
        } else if (arg == "--extract") {
            std::string mode = args.value();
            if (args.failed())
                return false;
            if (mode == "exact") {
                options.seer.exact_datapath = true;
                options.seer.naive_extract = false;
            } else if (mode == "greedy") {
                options.seer.exact_datapath = false;
                options.seer.naive_extract = false;
            } else if (mode == "naive") {
                options.seer.exact_datapath = false;
                options.seer.naive_extract = true;
            } else {
                args.fail("bad --extract mode '" + mode +
                          "' (expected exact, greedy, or naive)");
            }
        } else if (arg == "--oracle") {
            options.seer.use_laws = false;
        } else if (arg == "--unroll") {
            options.seer.unroll_max_trip = args.intValue();
        } else if (arg == "--phases") {
            options.seer.max_phases =
                static_cast<int>(args.intValue());
        } else if (arg == "--passes") {
            options.fixed_passes = args.value();
        } else if (arg == "--verify") {
            options.verify = true;
        } else if (arg == "--report") {
            options.report = true;
        } else if (arg == "--stats") {
            options.stats_file = args.value();
        } else if (arg == "--match-jobs") {
            int64_t jobs = args.intValue();
            if (!args.failed() && jobs < 1)
                args.fail("--match-jobs must be >= 1");
            options.seer.match_jobs = static_cast<unsigned>(jobs);
        } else if (arg == "-j" || arg == "--jobs") {
            int64_t jobs = args.intValue();
            if (!args.failed() && jobs < 1)
                args.fail("--jobs must be >= 1");
            options.seer.jobs = static_cast<unsigned>(jobs);
        } else if (seer::cli::handleScheduleFlag(args, arg,
                                                 options.seer)) {
            // --schedule / --eval-budget / --schedule-seed handled.
        } else if (arg == "--pass-cache") {
            options.seer.pass_cache_file = args.value();
        } else if (arg == "--no-pass-cache") {
            options.seer.use_pass_cache = false;
        } else if (arg == "--connect") {
            options.connect_socket = args.value();
        } else if (arg == "--deadline") {
            options.seer.deadline_seconds = args.doubleValue();
        } else if (arg == "--time-limit") {
            double limit = args.doubleValue();
            if (!args.failed() && limit <= 0)
                args.fail("--time-limit must be > 0");
            options.seer.runner.time_limit_seconds = limit;
        } else if (arg == "--mem-budget") {
            if (auto bytes = args.byteValue())
                options.seer.mem_budget_bytes = *bytes;
        } else if (arg == "--fault-plan") {
            std::string text = args.value();
            if (args.failed())
                return false;
            auto plan = seer::FaultPlan::parse(text);
            if (!plan) {
                args.fail("bad --fault-plan '" + text +
                          "' (expected "
                          "seed=N;rate=R;fixed=point@n,...)");
            } else {
                options.fault_plan = *plan;
            }
        } else if (arg == "--strict") {
            options.seer.strict = true;
        } else if (arg == "--inject-crash-rule") {
            // Hidden: chaos-inject an always-throwing dynamic rule.
            options.seer.extra_control_rules.push_back(crashRule());
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            args.fail("unknown option " + arg);
        } else if (options.input_file.empty()) {
            options.input_file = arg;
        } else {
            args.fail("multiple input files given");
        }
        if (!args.endArg())
            return false;
    }
    if (options.input_file.empty()) {
        std::cerr << "seer-opt: no input file given\n";
        return false;
    }
    if (!options.connect_socket.empty()) {
        // The daemon runs the session; flags that reshape the pipeline
        // itself (chaos injection, fixed pass baselines, server-side
        // persistence paths) are local-only by design.
        const char *conflict = nullptr;
        if (!options.fixed_passes.empty())
            conflict = "--passes";
        else if (options.fault_plan)
            conflict = "--fault-plan";
        else if (!options.seer.extra_control_rules.empty())
            conflict = "--inject-crash-rule";
        else if (!options.seer.pass_cache_file.empty())
            conflict = "--pass-cache";
        if (conflict) {
            std::cerr << "seer-opt: " << conflict
                      << " cannot be combined with --connect (the "
                         "daemon owns its own cache and pipeline)\n";
            return false;
        }
    }
    return true;
}

seer::hls::HlsReport
evaluateWithZeros(const seer::ir::Module &module,
                  const std::string &func_name, bool pipeline)
{
    using namespace seer;
    ir::Block &body =
        module.lookupFunc(func_name)->region(0).block();
    std::vector<ir::Buffer> buffers;
    std::vector<ir::RtValue> args;
    for (size_t i = 0; i < body.numArgs(); ++i) {
        ir::Type t = body.arg(i).type();
        if (!t.isMemRef())
            fatal("--report requires memref-only signatures");
        buffers.emplace_back(t);
    }
    // A deterministic non-trivial workload.
    for (auto &buffer : buffers) {
        for (size_t j = 0; j < buffer.ints.size(); ++j)
            buffer.ints[j] = static_cast<int64_t>((j * 31 + 7) % 97);
        for (size_t j = 0; j < buffer.floats.size(); ++j)
            buffer.floats[j] = 0.25 * static_cast<double>(j % 17) - 2;
    }
    for (auto &buffer : buffers)
        args.push_back(&buffer);
    hls::HlsOptions hls_options;
    hls_options.schedule.pipeline_loops = pipeline;
    return hls::evaluate(module, func_name, std::move(args),
                         hls_options);
}

/**
 * Dispatch the request to a seer-optd daemon. Returns the process
 * exit code, or nullopt to fall back to the in-process path (socket
 * absent/refused — the daemon may simply not be running).
 */
std::optional<int>
runRemote(const CliOptions &options, const seer::ir::Module &input,
          const std::string &ir_text)
{
    using namespace seer;

    std::string error;
    net::Fd sock = net::connectUnix(options.connect_socket, &error);
    if (!sock.valid()) {
        std::cerr << "; note: --connect " << options.connect_socket
                  << " unavailable (" << error
                  << "); running in-process\n";
        return std::nullopt;
    }

    core::ServeRequest request =
        core::ServeRequest::fromOptions(options.seer);
    request.func = options.func_name;
    request.ir_text = ir_text;
    request.want_stats = !options.stats_file.empty();

    if (net::sendFrame(sock.get(), core::serializeRequest(request),
                       &error) != net::IoStatus::Ok) {
        std::cerr << "seer-opt: daemon request failed: " << error
                  << "\n";
        return 1;
    }
    std::string payload;
    if (net::recvFrame(sock.get(), payload, &error) !=
        net::IoStatus::Ok) {
        std::cerr << "seer-opt: daemon response failed: "
                  << (error.empty() ? "connection closed" : error)
                  << "\n";
        return 1;
    }
    core::ServeResponse response;
    if (!core::parseResponse(payload, &response, &error)) {
        std::cerr << "seer-opt: bad daemon response: " << error
                  << "\n";
        return 1;
    }

    std::cerr << response.log;
    if (response.exit_code == 1) {
        std::cerr << "seer-opt: " << response.error << "\n";
        return 1;
    }
    if (!options.stats_file.empty()) {
        if (options.stats_file == "-") {
            std::cerr << response.stats_json;
        } else {
            std::ofstream stats_out(options.stats_file);
            if (!stats_out) {
                std::cerr << "seer-opt: cannot open "
                          << options.stats_file << "\n";
                return 1;
            }
            stats_out << response.stats_json;
        }
    }
    if (!options.quiet)
        std::cout << response.output_ir;

    int exit_code = response.exit_code;
    if (options.verify || options.report) {
        ir::Module output = ir::parseModule(response.output_ir);
        if (options.verify) {
            std::string diag;
            bool ok = core::checkModuleEquivalence(
                input, output, options.func_name, {}, &diag);
            std::cerr << "; end-to-end equivalence: "
                      << (ok ? "PASS" : "FAIL " + diag) << "\n";
            std::cerr << "; translation validation: server-side "
                         "(records not transmitted)\n";
            if (!ok)
                exit_code = 1;
        }
        if (options.report && exit_code != 1) {
            hls::HlsReport before =
                evaluateWithZeros(input, options.func_name, false);
            hls::HlsReport after =
                evaluateWithZeros(output, options.func_name, true);
            std::cerr << "; baseline: " << before.total_cycles
                      << " cycles, " << before.area_um2 << " um2, "
                      << before.power_mw << " mW\n";
            std::cerr << "; optimized: " << after.total_cycles
                      << " cycles, " << after.area_um2 << " um2, "
                      << after.power_mw << " mW\n";
            std::cerr << "; speedup: "
                      << static_cast<double>(before.total_cycles) /
                             static_cast<double>(after.total_cycles)
                      << "x\n";
        }
    }
    return exit_code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace seer;

    CliOptions options;
    if (!parseArgs(argc, argv, options)) {
        usage();
        return 2;
    }
    // Ctrl-C cancels cooperatively: the run winds down through the
    // degraded path and still reports stats (exit 3), a second signal
    // kills the process outright.
    seer::installSignalCancellation();

    std::ifstream file(options.input_file);
    if (!file) {
        std::cerr << "cannot open " << options.input_file << "\n";
        return 2;
    }
    std::stringstream text;
    text << file.rdbuf();

    try {
        ir::Module input = ir::parseModule(text.str());
        ir::verifyOrDie(input);
        if (options.func_name.empty()) {
            ir::Operation *first = input.firstFunc();
            if (!first)
                fatal("no function in input");
            options.func_name = first->strAttr("sym_name");
        }

        if (!options.connect_socket.empty()) {
            // Client mode: the daemon runs the same core::runSession
            // path the in-process arm rides, so the optimized IR is
            // byte-identical either way. A missing daemon falls back
            // to in-process transparently.
            std::optional<int> remote =
                runRemote(options, input, text.str());
            if (remote)
                return *remote;
        }

        ir::Module output;
        core::SeerResult result;
        bool degraded = false;
        if (!options.fixed_passes.empty()) {
            // The phase-ordered baseline: a fixed pipeline.
            if (!options.stats_file.empty())
                std::cerr << "; note: --stats ignored with --passes "
                             "(no e-graph runs)\n";
            output = ir::cloneModule(input);
            passes::runPipeline(output,
                                cli::splitList(options.fixed_passes));
            ir::verifyOrDie(output);
        } else {
            std::optional<ScopedFaultPlan> chaos;
            if (options.fault_plan)
                chaos.emplace(*options.fault_plan);
            result = core::optimize(input, options.func_name,
                                    options.seer);
            chaos.reset();
            output = ir::cloneModule(result.module);
            degraded = result.stats.degraded;
            std::cerr << core::summarizeRun(result);
            if (!options.stats_file.empty()) {
                std::string text = core::toJson(result.stats).dump(2);
                text += "\n";
                if (options.stats_file == "-") {
                    std::cerr << text;
                } else {
                    std::ofstream stats_out(options.stats_file);
                    if (!stats_out)
                        fatal("cannot open " + options.stats_file);
                    stats_out << text;
                }
            }
        }

        if (!options.quiet)
            ir::print(output, std::cout);

        if (options.verify) {
            std::string diag;
            bool ok = core::checkModuleEquivalence(
                input, output, options.func_name, {}, &diag);
            std::cerr << "; end-to-end equivalence: "
                      << (ok ? "PASS" : "FAIL " + diag) << "\n";
            if (!options.fixed_passes.empty()) {
                if (!ok)
                    return 1;
            } else {
                core::VerifyReport report =
                    core::verifyRecords(result.stats.records);
                std::cerr << "; translation validation: "
                          << report.passed << "/"
                          << report.total_checks << " passed, "
                          << report.inconclusive << " inconclusive, "
                          << report.failures.size() << " failed\n";
                for (const std::string &failure : report.failures)
                    std::cerr << ";   " << failure << "\n";
                if (!ok || !report.ok())
                    return 1;
            }
        }

        if (options.report) {
            hls::HlsReport before =
                evaluateWithZeros(input, options.func_name, false);
            hls::HlsReport after =
                evaluateWithZeros(output, options.func_name, true);
            std::cerr << "; baseline: " << before.total_cycles
                      << " cycles, " << before.area_um2 << " um2, "
                      << before.power_mw << " mW\n";
            std::cerr << "; optimized: " << after.total_cycles
                      << " cycles, " << after.area_um2 << " um2, "
                      << after.power_mw << " mW\n";
            std::cerr << "; speedup: "
                      << static_cast<double>(before.total_cycles) /
                             static_cast<double>(after.total_cycles)
                      << "x\n";
        }
        if (degraded)
            return 3;
    } catch (const FatalError &err) {
        std::cerr << "seer-opt: " << err.what() << "\n";
        return 1;
    } catch (const std::exception &err) {
        // Nothing below main should leak a non-FatalError exception;
        // if one does, still fail with a one-line diagnostic instead
        // of std::terminate.
        std::cerr << "seer-opt: internal error: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
