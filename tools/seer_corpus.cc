/**
 * @file
 * seer-corpus: the corpus-scale differential harness.
 *
 *   seer-corpus --seeds 1000                   judge 1000 generated
 *                                              kernels against the
 *                                              interpreter oracle
 *   seer-corpus --seeds 200 --out run.json     + machine-readable report
 *   seer-corpus --repro-dir repros/            write minimized repro
 *                                              files for every failure
 *   seer-corpus --check repros/seed7_miscompile.seer
 *                                              re-judge one repro file
 *
 * Every case is generated from its seed, optimized with the full
 * pipeline, co-executed with the input program on randomized workloads
 * under the interpreter, and cross-checked against the naive
 * extraction/matching reference arms (see src/corpus/oracle.h for the
 * exact contract). Failures are delta-debugged down to minimal repros.
 */
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/runner.h"
#include "support/exec_context.h"
#include "support/fault_inject.h"
#include "support/worker_pool.h"
#include "tools/cli_common.h"

namespace {

struct CliOptions
{
    seer::corpus::CorpusOptions corpus;
    std::string check_file; // non-empty: judge one file, not a corpus
    std::string out_file;   // non-empty: write the JSON report
    bool quiet = false;
};

void
usage()
{
    std::cerr <<
        "usage: seer-corpus [options]\n"
        "       seer-corpus --check FILE [options]\n"
        "\n"
        "Generates seeded random kernels, runs each through the full\n"
        "optimize() pipeline, and judges the result against the\n"
        "interpreter ground truth and the naive reference arms.\n"
        "Failures are minimized to small repro files.\n"
        "\n"
        "options (value-taking flags accept both '--flag V' and "
        "'--flag=V'):\n"
        "  --seeds N          corpus size (default 100)\n"
        "  --first-seed N     first program seed (default 1)\n"
        "  --check FILE       judge one program file instead of a\n"
        "                     corpus (repro workflow); prints the\n"
        "                     verdict, exit 1 when it fails\n"
        "  --out FILE         write the run report as JSON ('-' = "
        "stdout)\n"
        "  --repro-dir DIR    write minimized failing programs to DIR\n"
        "  --no-minimize      report failures without shrinking them\n"
        "  --no-reference     skip the naive extract/match reference "
        "arms\n"
        "  --fail-degraded    count degraded (recovered-fault) runs as\n"
        "                     failures\n"
        "  --exact            test exact Eqn-4 datapath extraction\n"
        "                     (default: greedy — much faster, and the\n"
        "                     fast reference arm is then free)\n"
        "  --runs N           randomized workloads per case (default 3)\n"
        "  --input-seed N     base seed for workload data\n"
        "  --deadline S       per-case wall-clock budget in seconds\n"
        "                     (expired cases count as timeouts, not\n"
        "                     failures; default 30, 0 = none)\n"
        "  -j, --jobs N       worker threads over cases ('0' = all\n"
        "                     cores); verdicts are identical for every "
        "N\n"
        "  --max-stmts N      generator shape: top-level statements\n"
        "  --buffer-size N    generator shape: memref capacity\n"
        "  --max-trip N       generator shape: max loop trip count\n"
        "  --nested-loops     generator shape: allow loop-in-loop\n"
        "  --min-max          generator shape: draw min/max ops too\n"
        "  --inject-unsound   chaos hook: add an unsound store-dropping\n"
        "                     rewrite so the harness must catch the\n"
        "                     miscompiles it plants\n"
        "  --chaos            judge every case under a per-case seeded\n"
        "                     fault plan and assert the degraded-mode\n"
        "                     contract (no crash/invalid output/\n"
        "                     miscompile) for every schedule; forces\n"
        "                     -j 1 and --no-reference\n"
        "  --chaos-seed N     base seed of the chaos plans (default\n"
        "                     0xC4A05); failing plans are replayable\n"
        "  --chaos-rate R     per-hit fault probability (default 0.02)\n"
        "  --chaos-plan P     with --check: re-judge the file under a\n"
        "                     fixed fault plan (from a repro header)\n"
        << seer::cli::scheduleFlagsUsage() <<
        "  --mem-budget B     per-case optimize() memory budget in\n"
        "                     bytes (k/m/g suffixes accepted)\n"
        "  --quiet            suppress per-failure progress lines\n"
        "\n"
        "exit codes:\n"
        "  0  every case passed (timeouts are reported but pass)\n"
        "  1  at least one case failed (or --check file fails)\n"
        "  2  usage error\n"
        "  3  run canceled (SIGINT/SIGTERM): the report covers the\n"
        "     judged prefix; skipped cases are counted, not failed\n";
}

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    auto &corpus = options.corpus;
    seer::cli::ArgCursor args("seer-corpus", argc, argv);
    while (args.nextArg()) {
        const std::string &arg = args.arg();
        if (arg == "--seeds") {
            corpus.count = static_cast<size_t>(
                args.positiveValue("corpus size"));
        } else if (arg == "--first-seed") {
            corpus.first_seed =
                static_cast<uint64_t>(args.intValue());
        } else if (arg == "--check") {
            options.check_file = args.value();
        } else if (arg == "--out") {
            options.out_file = args.value();
        } else if (arg == "--repro-dir") {
            corpus.repro_dir = args.value();
        } else if (arg == "--no-minimize") {
            corpus.minimize = false;
        } else if (arg == "--no-reference") {
            corpus.oracle.check_reference = false;
        } else if (arg == "--fail-degraded") {
            corpus.oracle.fail_on_degraded = true;
        } else if (arg == "--exact") {
            corpus.oracle.seer.exact_datapath = true;
        } else if (arg == "--runs") {
            corpus.oracle.input_runs = static_cast<int>(
                args.positiveValue("workload runs"));
        } else if (arg == "--input-seed") {
            corpus.oracle.input_seed =
                static_cast<uint64_t>(args.intValue());
        } else if (arg == "--deadline") {
            double deadline = args.doubleValue();
            if (!args.failed() && deadline < 0)
                args.fail("--deadline must be >= 0");
            corpus.oracle.deadline_seconds = deadline;
        } else if (arg == "-j" || arg == "--jobs") {
            int64_t jobs = args.intValue();
            if (!args.failed() && jobs < 0)
                args.fail("--jobs must be >= 0");
            corpus.jobs = jobs == 0 ? seer::hardwareThreads()
                                    : static_cast<unsigned>(jobs);
        } else if (arg == "--max-stmts") {
            corpus.shape.max_top_statements = static_cast<int>(
                args.positiveValue("program size"));
        } else if (arg == "--buffer-size") {
            corpus.shape.buffer_size = static_cast<int>(
                args.positiveValue("memref capacity"));
        } else if (arg == "--max-trip") {
            corpus.shape.max_trip = static_cast<int>(
                args.positiveValue("trip count"));
        } else if (arg == "--nested-loops") {
            corpus.shape.allow_nested_loops = true;
        } else if (arg == "--min-max") {
            corpus.shape.allow_min_max = true;
        } else if (arg == "--chaos") {
            corpus.chaos = true;
        } else if (arg == "--chaos-seed") {
            corpus.chaos_seed =
                static_cast<uint64_t>(args.intValue());
        } else if (arg == "--chaos-rate") {
            double rate = args.doubleValue();
            if (!args.failed() && (rate < 0 || rate > 1))
                args.fail("--chaos-rate must be in [0,1]");
            corpus.chaos_rate = rate;
        } else if (arg == "--chaos-plan") {
            std::string text = args.value();
            if (args.failed())
                return false;
            auto plan = seer::FaultPlan::parse(text);
            if (!plan)
                args.fail("bad --chaos-plan '" + text + "'");
            else
                corpus.oracle.chaos_plan = *plan;
        } else if (seer::cli::handleScheduleFlag(args, arg,
                                                 corpus.oracle.seer)) {
            // --schedule / --eval-budget / --schedule-seed pass
            // through to every case's optimize() run. A bandit
            // schedule may settle on a different optimum than
            // exhaustive, but the oracle judges semantics, never which
            // optimum was reached — soundness verdicts are
            // schedule-independent.
        } else if (arg == "--mem-budget") {
            if (auto bytes = args.byteValue())
                corpus.oracle.seer.mem_budget_bytes = *bytes;
        } else if (arg == "--inject-unsound") {
            corpus.oracle.seer.extra_control_rules.push_back(
                seer::corpus::makeUnsoundStoreDropRule());
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            args.fail("unknown option " + arg);
        }
        if (!args.endArg())
            return false;
    }
    return true;
}

/** The --check workflow: judge one file (typically a repro). */
int
checkOne(const CliOptions &options)
{
    std::ifstream file(options.check_file);
    if (!file) {
        std::cerr << "seer-corpus: cannot open " << options.check_file
                  << "\n";
        return 2;
    }
    std::stringstream text;
    text << file.rdbuf();
    seer::corpus::OracleVerdict verdict =
        seer::corpus::checkSource(text.str(), options.corpus.oracle);
    std::cout << options.check_file << ": "
              << seer::corpus::failureKindName(verdict.kind);
    if (!verdict.detail.empty())
        std::cout << " (" << verdict.detail << ")";
    if (verdict.degraded)
        std::cout << " [degraded]";
    std::cout << "\n";
    return verdict.failed() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace seer;

    CliOptions options;
    // Corpus runs favor throughput: greedy datapath extraction by
    // default (--exact opts back in), and a per-case deadline so one
    // pathological kernel cannot wedge a big run.
    options.corpus.oracle.seer.exact_datapath = false;
    options.corpus.oracle.deadline_seconds = 30;
    if (!parseArgs(argc, argv, options)) {
        usage();
        return 2;
    }
    // Ctrl-C finalizes the report over the judged prefix (exit 3); a
    // second signal kills the process outright.
    installSignalCancellation();
    options.corpus.exec = ExecContext::make();
    if (!options.check_file.empty())
        return checkOne(options);

    if (!options.quiet) {
        options.corpus.progress =
            [&](uint64_t seed, const corpus::OracleVerdict &verdict) {
                if (verdict.kind == corpus::FailureKind::None)
                    return;
                std::cerr << "; seed " << seed << ": "
                          << corpus::failureKindName(verdict.kind)
                          << " — " << verdict.detail << "\n";
            };
    }

    corpus::CorpusReport report = corpus::runCorpus(options.corpus);

    size_t judged = report.total - report.skipped;
    std::cerr << "; corpus: " << report.passed << "/" << judged
              << " passed";
    if (report.failed)
        std::cerr << ", " << report.failed << " FAILED";
    if (report.timeouts)
        std::cerr << ", " << report.timeouts << " timed out";
    if (report.degraded)
        std::cerr << ", " << report.degraded << " degraded";
    if (report.skipped)
        std::cerr << ", " << report.skipped << " skipped (canceled)";
    std::cerr << " in " << report.total_seconds << "s\n";
    for (const auto &[kind, count] : report.taxonomy)
        std::cerr << ";   " << kind << ": " << count << "\n";
    for (const corpus::CaseFailure &failure : report.failures) {
        std::cerr << "; seed " << failure.seed << " ("
                  << corpus::failureKindName(failure.kind) << "): "
                  << failure.program_ops << " -> "
                  << failure.minimized_ops << " ops";
        if (!failure.repro_path.empty())
            std::cerr << ", repro " << failure.repro_path;
        std::cerr << "\n";
    }

    if (!options.out_file.empty()) {
        std::string text =
            corpus::toJson(report, options.corpus).dump(2) + "\n";
        if (options.out_file == "-") {
            std::cout << text;
        } else {
            std::ofstream out(options.out_file, std::ios::trunc);
            if (!out) {
                std::cerr << "seer-corpus: cannot open "
                          << options.out_file << "\n";
                return 2;
            }
            out << text;
        }
    }
    if (report.failed)
        return 1;
    return report.canceled ? 3 : 0;
}
