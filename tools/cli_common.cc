#include "tools/cli_common.h"

#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/seer.h"

namespace seer::cli {

ArgCursor::ArgCursor(std::string prog, int argc, char **argv)
    : prog_(std::move(prog)), args_(argv + 1, argv + argc)
{
}

bool
ArgCursor::nextArg()
{
    if (index_ >= args_.size())
        return false;
    arg_ = args_[index_++];
    inline_value_.reset();
    bad_value_ = false;
    // GNU-style --flag=value: split so both spellings hit the same
    // validation (a bad number in either reports "bad number", not
    // "unknown option").
    if (arg_.size() > 2 && arg_[0] == '-' && arg_[1] == '-') {
        size_t eq = arg_.find('=');
        if (eq != std::string::npos) {
            inline_value_ = arg_.substr(eq + 1);
            arg_.resize(eq);
        }
    }
    return true;
}

bool
ArgCursor::endArg()
{
    if (bad_value_)
        return false;
    if (inline_value_) {
        std::cerr << prog_ << ": option " << arg_
                  << " does not take a value\n";
        bad_value_ = true;
        return false;
    }
    return true;
}

void
ArgCursor::fail(const std::string &message)
{
    std::cerr << prog_ << ": " << message << "\n";
    bad_value_ = true;
}

std::string
ArgCursor::value()
{
    if (inline_value_) {
        std::string value = *inline_value_;
        inline_value_.reset();
        return value;
    }
    if (index_ >= args_.size()) {
        std::cerr << prog_ << ": missing value for " << arg_ << "\n";
        bad_value_ = true;
        return "";
    }
    return args_[index_++];
}

int64_t
ArgCursor::intValue()
{
    std::string text = value();
    if (bad_value_)
        return 0;
    try {
        size_t used = 0;
        int64_t parsed = std::stoll(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return parsed;
    } catch (const std::exception &) {
        std::cerr << prog_ << ": bad integer '" << text << "' for "
                  << arg_ << "\n";
        bad_value_ = true;
        return 0;
    }
}

double
ArgCursor::doubleValue()
{
    std::string text = value();
    if (bad_value_)
        return 0;
    try {
        size_t used = 0;
        double parsed = std::stod(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return parsed;
    } catch (const std::exception &) {
        std::cerr << prog_ << ": bad number '" << text << "' for "
                  << arg_ << "\n";
        bad_value_ = true;
        return 0;
    }
}

std::optional<uint64_t>
ArgCursor::byteValue()
{
    std::string text = value();
    if (bad_value_)
        return std::nullopt;
    uint64_t scale = 1;
    if (!text.empty()) {
        char suffix = text.back();
        if (suffix == 'k' || suffix == 'K')
            scale = 1024ull;
        else if (suffix == 'm' || suffix == 'M')
            scale = 1024ull * 1024;
        else if (suffix == 'g' || suffix == 'G')
            scale = 1024ull * 1024 * 1024;
        if (scale != 1)
            text.pop_back();
    }
    try {
        size_t used = 0;
        uint64_t parsed = std::stoull(text, &used);
        if (used != text.size() || text.empty())
            throw std::invalid_argument(text);
        return parsed * scale;
    } catch (const std::exception &) {
        std::cerr << prog_ << ": bad byte count '" << text << "' for "
                  << arg_ << "\n";
        bad_value_ = true;
        return std::nullopt;
    }
}

int64_t
ArgCursor::positiveValue(const char *what)
{
    int64_t parsed = intValue();
    if (!bad_value_ && parsed < 1) {
        std::cerr << prog_ << ": " << arg_ << " must be >= 1 (" << what
                  << ")\n";
        bad_value_ = true;
    }
    return parsed;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream stream(text);
    std::string piece;
    while (std::getline(stream, piece, ',')) {
        if (!piece.empty())
            out.push_back(piece);
    }
    return out;
}

bool
handleScheduleFlag(ArgCursor &args, const std::string &arg,
                   core::SeerOptions &seer)
{
    if (arg == "--schedule") {
        std::string name = args.value();
        if (args.failed())
            return true;
        if (!core::parseScheduleKind(name, &seer.schedule)) {
            args.fail("bad --schedule '" + name +
                      "' (expected exhaustive or bandit)");
        }
    } else if (arg == "--eval-budget") {
        double budget = args.doubleValue();
        if (!args.failed() && (budget <= 0 || budget > 1))
            args.fail("--eval-budget must be in (0, 1]");
        else
            seer.eval_budget = budget;
    } else if (arg == "--schedule-seed") {
        seer.schedule_seed = static_cast<uint64_t>(args.intValue());
    } else {
        return false;
    }
    return true;
}

const char *
scheduleFlagsUsage()
{
    return
        "  --schedule S       proposal scheduler: 'exhaustive'\n"
        "                     (default; every candidate, enumeration\n"
        "                     order) or 'bandit' (seeded UCB over\n"
        "                     (pass, snippet-hash) arms; may settle on\n"
        "                     a different — never unsound — optimum)\n"
        "  --eval-budget F    bandit: cold external evaluations per\n"
        "                     candidate wave as a fraction in (0, 1]\n"
        "                     (default 1.0; every wave keeps >= 1 slot)\n"
        "  --schedule-seed N  bandit replay seed (default 0x5EED); the\n"
        "                     same seed replays byte-identically across\n"
        "                     runs, processes, and -j values\n";
}

} // namespace seer::cli
