/**
 * @file
 * Shared command-line machinery for the seer tool binaries.
 *
 * seer-opt, seer-corpus, and seer-optd all speak the same flag
 * dialect: GNU-style `--flag value` and `--flag=value` are equivalent,
 * a bad number in either spelling reports "bad integer"/"bad number"
 * (never "unknown option"), byte counts accept k/m/g suffixes, and a
 * value handed to a boolean flag ("--quiet=1") is a usage error. That
 * contract used to be copy-pasted per binary; this cursor centralizes
 * it so the three dispatch loops stay one `if` chain over flag names.
 *
 * Usage:
 *
 *   cli::ArgCursor args("seer-opt", argc, argv);
 *   while (args.nextArg()) {
 *       const std::string &arg = args.arg();
 *       if (arg == "--func")
 *           options.func = args.value();
 *       else if (arg == "--jobs")
 *           options.jobs = args.intValue();
 *       else if (arg == "--quiet")
 *           options.quiet = true;
 *       else
 *           ... positional / unknown ...
 *       if (!args.endArg())   // bad value or leftover "--quiet=1"
 *           return false;
 *   }
 */
#ifndef SEER_TOOLS_CLI_COMMON_H_
#define SEER_TOOLS_CLI_COMMON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace seer::core {
struct SeerOptions;
}

namespace seer::cli {

/**
 * A one-pass cursor over argv. Each nextArg() advances to the next
 * argument and splits any inline `=value`; the value/intValue/...
 * accessors consume the inline value or the following argument, and
 * report uniform diagnostics ("<prog>: bad integer 'x' for --flag")
 * on stderr. endArg() closes the per-argument protocol: it rejects an
 * unconsumed inline value and reports whether anything failed.
 */
class ArgCursor
{
  public:
    ArgCursor(std::string prog, int argc, char **argv);

    /** Advance to the next argument; false at the end. */
    bool nextArg();

    /** The current flag name, inline value already split off. */
    const std::string &arg() const { return arg_; }

    /** True when the current argument failed validation. */
    bool failed() const { return bad_value_; }

    /**
     * Close out the current argument: a leftover inline value (a
     * boolean flag spelled "--flag=x") is a usage error. Returns
     * false when this argument failed for any reason.
     */
    bool endArg();

    /** Report "<prog>: <message>" and mark the argument failed. */
    void fail(const std::string &message);

    /** The raw value: inline `=value` or the next argument. */
    std::string value();
    /** A whole int64 ("bad integer" otherwise). */
    int64_t intValue();
    /** A whole double ("bad number" otherwise). */
    double doubleValue();
    /**
     * A byte count with optional k/m/g suffix ("bad byte count"
     * otherwise). Returns nullopt on failure.
     */
    std::optional<uint64_t> byteValue();
    /** intValue(), additionally requiring >= 1 ("<arg> must be >= 1
     *  (<what>)" otherwise). */
    int64_t positiveValue(const char *what);

  private:
    std::string prog_;
    std::vector<std::string> args_;
    size_t index_ = 0;
    std::string arg_;
    std::optional<std::string> inline_value_;
    bool bad_value_ = false;
};

/** Split a comma-separated list, dropping empty pieces. */
std::vector<std::string> splitList(const std::string &text);

/**
 * Handle the proposal-scheduler flags shared by seer-opt, seer-corpus
 * and seer-optd: --schedule (exhaustive | bandit), --eval-budget
 * (fraction in (0, 1]) and --schedule-seed. Returns true when `arg`
 * was one of them (consumed — check args.endArg() as usual); false
 * leaves the cursor untouched for the caller's own dispatch chain.
 */
bool handleScheduleFlag(ArgCursor &args, const std::string &arg,
                        core::SeerOptions &seer);

/** The usage text of the shared scheduler flags (one block, aligned
 *  with each binary's two-space flag column). */
const char *scheduleFlagsUsage();

} // namespace seer::cli

#endif // SEER_TOOLS_CLI_COMMON_H_
