/**
 * @file
 * seer-optd: the persistent optimization daemon.
 *
 *   seer-optd --socket /tmp/seer.sock
 *   seer-opt --connect /tmp/seer.sock kernel.seer
 *
 * One process, one warm sharded cache, many concurrent requests: the
 * amortization the single-shot CLI cannot offer. See core/server.h
 * for the architecture and DESIGN.md for the determinism contract of
 * shared-cache mode.
 */
#include <chrono>
#include <iostream>
#include <thread>

#include "core/server.h"
#include "support/exec_context.h"
#include "tools/cli_common.h"

namespace {

void
usage()
{
    std::cerr <<
        "usage: seer-optd --socket PATH [options]\n"
        "\n"
        "Runs a persistent optimization server on a unix socket.\n"
        "Drive it with `seer-opt --connect PATH <input.seer>`; results\n"
        "are byte-identical to in-process seer-opt runs.\n"
        "\n"
        "options (value-taking flags accept both '--flag V' and "
        "'--flag=V'):\n"
        "  --socket PATH      unix socket to listen on (required)\n"
        "  --workers N        concurrent request sessions (default 2)\n"
        "  --cache-shards N   stripes of the shared pass/verification\n"
        "                     cache (default 16, rounded to a power of\n"
        "                     two)\n"
        "  --cache-bytes B    byte budget of the shared cache (k/m/g\n"
        "                     suffixes; default 256m; 0 = unlimited);\n"
        "                     least-recently-used entries are evicted\n"
        "                     per shard — eviction can only cost a\n"
        "                     recomputation, never change a result\n"
        "  --cache-file FILE  persist the cache here: loaded at start\n"
        "                     (a corrupt file cold-starts and is\n"
        "                     reported), saved every --save-every\n"
        "                     requests and at shutdown via the atomic\n"
        "                     tmp+fsync+rename path\n"
        "  --save-every N     requests between periodic saves\n"
        "                     (default 32; 0 = only at shutdown)\n"
        "  --max-deadline S   clamp per-request deadlines to S seconds\n"
        "                     (0 = no clamp)\n"
        "  --mem-budget B     server-wide memory budget (the shared\n"
        "                     cache charges it; k/m/g suffixes)\n"
        "  --quiet            suppress per-request log lines\n"
        "\n"
        "SIGTERM/SIGINT shut down cleanly: stop accepting, let active\n"
        "sessions degrade out, drain, save the cache, exit 0.\n"
        "\n"
        "exit codes:\n"
        "  0  clean shutdown\n"
        "  1  startup failure (cannot bind the socket)\n"
        "  2  usage error\n";
}

struct DaemonOptions
{
    seer::core::ServerOptions server;
};

bool
parseArgs(int argc, char **argv, DaemonOptions &options)
{
    seer::cli::ArgCursor args("seer-optd", argc, argv);
    while (args.nextArg()) {
        const std::string &arg = args.arg();
        if (arg == "--socket") {
            options.server.socket_path = args.value();
        } else if (arg == "--workers") {
            options.server.workers = static_cast<unsigned>(
                args.positiveValue("worker count"));
        } else if (arg == "--cache-shards") {
            options.server.cache_shards = static_cast<unsigned>(
                args.positiveValue("shard count"));
        } else if (arg == "--cache-bytes") {
            if (auto bytes = args.byteValue())
                options.server.cache_max_bytes = *bytes;
        } else if (arg == "--cache-file") {
            options.server.cache_file = args.value();
        } else if (arg == "--save-every") {
            int64_t every = args.intValue();
            if (!args.failed() && every < 0)
                args.fail("--save-every must be >= 0");
            options.server.save_every =
                static_cast<unsigned>(every);
        } else if (arg == "--max-deadline") {
            double seconds = args.doubleValue();
            if (!args.failed() && seconds < 0)
                args.fail("--max-deadline must be >= 0");
            options.server.max_deadline_seconds = seconds;
        } else if (arg == "--mem-budget") {
            if (auto bytes = args.byteValue())
                options.server.mem_budget_bytes = *bytes;
        } else if (arg == "--quiet") {
            options.server.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            args.fail("unknown option " + arg);
        }
        if (!args.endArg())
            return false;
    }
    if (options.server.socket_path.empty()) {
        std::cerr << "seer-optd: --socket is required\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace seer;

    DaemonOptions options;
    if (!parseArgs(argc, argv, options)) {
        usage();
        return 2;
    }
    // First signal: cooperative shutdown (the accept loop and every
    // active session observe the flag). Second signal: hard exit.
    installSignalCancellation();

    core::OptServer server(options.server);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "seer-optd: " << error << "\n";
        return 1;
    }
    if (!options.server.quiet) {
        std::cerr << "; seer-optd: listening on "
                  << options.server.socket_path << " ("
                  << options.server.workers << " workers, "
                  << options.server.cache_shards << " cache shards)\n";
    }

    while (server.running() && !signalCancelRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.stop();

    core::ServerCounters counters = server.counters();
    std::cerr << "; seer-optd: shutdown: " << counters.requests
              << " request(s), " << counters.failures
              << " failed, " << counters.degraded << " degraded, "
              << counters.client_gone << " client disconnect(s), "
              << counters.protocol_errors << " protocol error(s), "
              << counters.cache_saves << " cache save(s)\n";
    return 0;
}
