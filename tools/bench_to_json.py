#!/usr/bin/env python3
"""Run the e-graph microbenchmarks and write BENCH_egraph.json.

Wraps google-benchmark's --benchmark_format=json output and adds a
summary section with before/after speedups: benchmarks parameterized
with a naive:{0,1} argument run the pre-index reference matcher
(naive:1, the "before") and the indexed + incremental matcher (naive:0,
the "after") on the same workload, and the summary reports the ratio.

Usage:
    tools/bench_to_json.py --bench build/bench/micro_egraph \
        [--out BENCH_egraph.json] [--min-time 0.05s] \
        [--filter REGEX]
"""

import argparse
import json
import subprocess
import sys


def run_benchmarks(bench, min_time, bench_filter):
    def command(value):
        cmd = [bench, "--benchmark_format=json",
               f"--benchmark_min_time={value}"]
        if bench_filter:
            cmd.append(f"--benchmark_filter={bench_filter}")
        return cmd

    proc = subprocess.run(command(min_time), stdout=subprocess.PIPE)
    if proc.returncode != 0 and min_time.endswith("s"):
        # Older google-benchmark wants a plain double (no "s" suffix).
        proc = subprocess.run(command(min_time[:-1]),
                              stdout=subprocess.PIPE)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark run failed ({proc.returncode})")
    return json.loads(proc.stdout)


def summarize(benchmarks):
    """Pair <base>/naive:1 with <base>/naive:0 and report speedups."""
    times = {}
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = bench["real_time"]
    summary = {}
    for name, naive_time in times.items():
        if not name.endswith("/naive:1"):
            continue
        base = name[: -len("/naive:1")]
        indexed = times.get(base + "/naive:0")
        if indexed is None or indexed <= 0:
            continue
        summary[base] = {
            "naive_time": naive_time,
            "indexed_time": indexed,
            "speedup": naive_time / indexed,
        }
    return summary


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to the micro_egraph binary")
    parser.add_argument("--out", default="BENCH_egraph.json")
    parser.add_argument("--min-time", default="0.05s")
    parser.add_argument("--filter", default=None,
                        help="--benchmark_filter regex")
    args = parser.parse_args()

    raw = run_benchmarks(args.bench, args.min_time, args.filter)
    benchmarks = [
        {key: bench[key]
         for key in ("name", "real_time", "cpu_time", "time_unit",
                     "iterations", "items_per_second", "label")
         if key in bench}
        for bench in raw.get("benchmarks", [])
        if bench.get("run_type") != "aggregate"
    ]
    out = {
        "generated_by": "tools/bench_to_json.py",
        "context": {
            key: raw.get("context", {}).get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu",
                        "library_build_type")
        },
        "benchmarks": benchmarks,
        "summary": summarize(raw.get("benchmarks", [])),
    }
    with open(args.out, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    for base, entry in sorted(out["summary"].items()):
        print(f"{base}: {entry['speedup']:.2f}x "
              f"(naive {entry['naive_time']:.0f} -> "
              f"indexed {entry['indexed_time']:.0f})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
