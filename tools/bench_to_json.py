#!/usr/bin/env python3
"""Run the microbenchmarks and write a BENCH_*.json artifact.

Wraps google-benchmark's --benchmark_format=json output and adds a
summary section with before/after speedups. Two modes:

  --mode egraph (default, micro_egraph): benchmarks parameterized with
      a naive:{0,1} argument run the pre-index reference matcher
      (naive:1, the "before") and the indexed + incremental matcher
      (naive:0, the "after") on the same workload; the summary reports
      the ratio. Writes BENCH_egraph.json.

  --mode passes (micro_passes): benchmarks parameterized with
      cache:{0,1}/jobs:N arms; the cold serial arm (cache:0/jobs:1) is
      the baseline and every other arm reports its speedup against it.
      The BM_ScheduleBudget arms (kernel:K/sched:S/budget_pct:P) are
      summarized separately as the proposal scheduler's cost-vs-budget
      trajectory: per eval budget, how many kernels keep the exhaustive
      baseline's final extraction cost and the cold-evaluation
      reduction. Writes BENCH_passes.json.

  --mode extract (micro_extract): same naive:{0,1} pairing as egraph —
      naive:1 runs the from-scratch extraction bounds, naive:0 the
      maintained cost-bound analysis. Writes BENCH_extract.json.

  --mode corpus (seer-corpus): runs the differential corpus harness
      (--bench points at the seer-corpus binary; --seeds sets the
      corpus size, extra harness flags go after "--"), or consumes an
      existing run report with --report. The summary is the pass rate
      and the failure taxonomy. Writes BENCH_corpus.json.

  --mode serve (micro_serve): runs the seer-optd load generator
      (--bench points at the micro_serve binary; extra flags like
      --clients/--rounds go after "--"), or consumes an existing run
      report with --report. The summary is the p50/p99 latency and
      hit-rate trajectory cold -> warm, the warm-over-cold p50 speedup,
      and the cross-round byte-identity verdict.
      Writes BENCH_serve.json.

Usage:
    tools/bench_to_json.py --bench build/bench/micro_egraph \
        [--mode egraph|passes] [--out BENCH_egraph.json] \
        [--min-time 0.05s] [--filter REGEX]
    tools/bench_to_json.py --mode corpus --bench build/tools/seer-corpus \
        --seeds 200 [--out BENCH_corpus.json] [-- --no-reference ...]
    tools/bench_to_json.py --mode corpus --report corpus_run.json
    tools/bench_to_json.py --mode serve --bench build/bench/micro_serve \
        [--out BENCH_serve.json] [-- --clients 4 --rounds 3]
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile


def run_benchmarks(bench, min_time, bench_filter):
    def command(value):
        cmd = [bench, "--benchmark_format=json",
               f"--benchmark_min_time={value}"]
        if bench_filter:
            cmd.append(f"--benchmark_filter={bench_filter}")
        return cmd

    proc = subprocess.run(command(min_time), stdout=subprocess.PIPE)
    if proc.returncode != 0 and min_time.endswith("s"):
        # Older google-benchmark wants a plain double (no "s" suffix).
        proc = subprocess.run(command(min_time[:-1]),
                              stdout=subprocess.PIPE)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark run failed ({proc.returncode})")
    return json.loads(proc.stdout)


def real_times(benchmarks):
    times = {}
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = bench["real_time"]
    return times


JOBS_ARM_RE = re.compile(r"^(?P<base>.*)/jobs:(?P<jobs>\d+)"
                         r"(?P<rest>(/[a-z_]+:[0-9.]+)*)$")


def summarize_egraph(benchmarks):
    """Pair <base>/naive:1 with <base>/naive:0 and report speedups.

    Benchmarks parameterized with jobs:N instead pair every arm against
    the serial jobs:1 baseline (the sharded e-match scaling arms); the
    entry carries the per-arm counters (shards, search wall/busy
    seconds, parallel efficiency) alongside the wall-time speedup.
    """
    times = real_times(benchmarks)
    counters = {}
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        counters[bench["name"]] = {
            key: value for key, value in bench.items()
            if key in ("shards", "search_wall_s", "shard_busy_s",
                       "parallel_efficiency", "nodes", "applied",
                       "bytes_per_node_map", "bytes_per_node_soa",
                       "byte_reduction", "bytes_exact")
        }
    summary = {}
    jobs_groups = {}
    for name, time in times.items():
        match = JOBS_ARM_RE.match(name)
        if match is not None:
            key = (match.group("base"), match.group("rest"))
            jobs_groups.setdefault(key, {})[
                int(match.group("jobs"))] = name
            continue
        if not name.endswith("/naive:1"):
            continue
        base = name[: -len("/naive:1")]
        indexed = times.get(base + "/naive:0")
        if indexed is None or indexed <= 0:
            continue
        summary[base] = {
            "naive_time": time,
            "indexed_time": indexed,
            "speedup": time / indexed,
        }
    for (base, rest), arms in jobs_groups.items():
        baseline = arms.get(1)
        if baseline is None or times[baseline] <= 0:
            continue
        entry = {
            "baseline_time": times[baseline],
            "baseline_counters": counters.get(baseline, {}),
            "arms": {},
        }
        for jobs, name in sorted(arms.items()):
            if jobs == 1 or times[name] <= 0:
                continue
            entry["arms"][f"jobs:{jobs}"] = {
                "time": times[name],
                "speedup": times[baseline] / times[name],
                "counters": counters.get(name, {}),
            }
        summary[base + rest] = entry
    # Storage-style single benchmarks: surface their counters directly.
    for name, ctrs in counters.items():
        if name in times and "byte_reduction" in ctrs:
            summary.setdefault(name, {})["counters"] = ctrs
    return summary


ARM_RE = re.compile(r"^(?P<base>.*)/(?P<arm>cache:\d+/jobs:\d+)"
                    r"(?P<suffix>/real_time)?$")


def summarize_passes(benchmarks):
    """Report each cache/jobs arm's speedup over cold-serial."""
    groups = {}
    for name, time in real_times(benchmarks).items():
        match = ARM_RE.match(name)
        if match is None:
            continue
        key = (match.group("base"), match.group("suffix") or "")
        groups.setdefault(key, {})[match.group("arm")] = time
    summary = {}
    for (base, _suffix), arms in groups.items():
        baseline = arms.get("cache:0/jobs:1")
        if baseline is None or baseline <= 0:
            continue
        entry = {"baseline_time": baseline, "arms": {}}
        for arm, time in sorted(arms.items()):
            if arm == "cache:0/jobs:1" or time <= 0:
                continue
            entry["arms"][arm] = {
                "time": time,
                "speedup": baseline / time,
            }
        summary[base] = entry
    return summary


SCHED_ARM_RE = re.compile(
    r"^(?P<base>.*)/kernel:(?P<kernel>\d+)/sched:(?P<sched>\d+)"
    r"/budget_pct:(?P<pct>\d+)(?P<suffix>/real_time)?$")


def summarize_schedule(benchmarks):
    """The proposal scheduler's cost-vs-budget trajectory.

    Groups BM_ScheduleBudget arms per kernel (the label carries the
    kernel name), pairs every bandit arm against the exhaustive
    baseline, and reports per budget how many kernels keep the
    baseline's final extraction cost and how many cold external
    evaluations the budget saved.
    """
    kernels = {}
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        match = SCHED_ARM_RE.match(bench["name"])
        if match is None:
            continue
        label = bench.get("label") or f"kernel:{match.group('kernel')}"
        arm = ("exhaustive" if match.group("sched") == "0"
               else f"bandit@{match.group('pct')}")
        kernels.setdefault(label, {})[arm] = {
            "time": bench["real_time"],
            "cost": bench.get("cost", 0.0),
            "evals": bench.get("evals", 0.0),
            "deferred": bench.get("deferred", 0.0),
        }
    if not kernels:
        return None
    summary = {"kernels": {}, "budget_trajectory": []}
    budget_arms = set()
    for label, arms in sorted(kernels.items()):
        baseline = arms.get("exhaustive")
        if baseline is None:
            continue
        entry = {"exhaustive": baseline, "arms": {}}
        for arm, stats in sorted(arms.items()):
            if arm == "exhaustive":
                continue
            stats = dict(stats)
            stats["cost_match"] = stats["cost"] == baseline["cost"]
            stats["eval_reduction"] = (
                baseline["evals"] / stats["evals"]
                if stats["evals"] > 0 else 0.0)
            entry["arms"][arm] = stats
            budget_arms.add(arm)
        summary["kernels"][label] = entry
    for arm in sorted(budget_arms,
                      key=lambda a: -int(a.split("@")[1])):
        total = matched = 0
        baseline_evals = arm_evals = 0.0
        for entry in summary["kernels"].values():
            stats = entry["arms"].get(arm)
            if stats is None:
                continue
            total += 1
            matched += 1 if stats["cost_match"] else 0
            baseline_evals += entry["exhaustive"]["evals"]
            arm_evals += stats["evals"]
        summary["budget_trajectory"].append({
            "arm": arm,
            "budget_pct": int(arm.split("@")[1]),
            "kernels": total,
            "cost_matched": matched,
            "baseline_cold_evals": baseline_evals,
            "cold_evals": arm_evals,
            "eval_reduction": (baseline_evals / arm_evals
                               if arm_evals > 0 else 0.0),
        })
    return summary


def run_corpus(bench, seeds, extra_args):
    """Run seer-corpus and return its JSON run report."""
    fd, path = tempfile.mkstemp(suffix=".json", prefix="seer_corpus_")
    os.close(fd)
    try:
        cmd = [bench, "--seeds", str(seeds), "--out", path, "--quiet"]
        cmd += extra_args
        proc = subprocess.run(cmd)
        # 0 = all passed, 1 = failures found (the report still exists
        # and records them); anything else is a harness error.
        if proc.returncode not in (0, 1):
            raise SystemExit(
                f"seer-corpus failed ({proc.returncode})")
        with open(path) as f:
            return json.load(f)
    finally:
        os.unlink(path)


def run_serve(bench, extra_args):
    """Run micro_serve and return its JSON run report."""
    fd, path = tempfile.mkstemp(suffix=".json", prefix="seer_serve_")
    os.close(fd)
    try:
        cmd = [bench, "--out", path, "--quiet"] + extra_args
        proc = subprocess.run(cmd)
        # 1 = a request failed or outputs diverged; the report (if
        # written) records it, but the artifact should not pretend the
        # run was healthy.
        if proc.returncode != 0:
            raise SystemExit(f"micro_serve failed ({proc.returncode})")
        with open(path) as f:
            return json.load(f)
    finally:
        os.unlink(path)


def summarize_serve(report):
    rounds = report.get("rounds_data", [])
    return {
        "clients": report.get("clients", 0),
        "rounds": report.get("rounds", 0),
        "validation_runs": report.get("validation_runs", 0),
        "cold_p50_ms": report.get("cold_p50_ms", 0.0),
        "warm_p50_ms": report.get("warm_p50_ms", 0.0),
        "warm_speedup": report.get("warm_speedup", 0.0),
        "deterministic": report.get("deterministic", False),
        "hit_rate_trajectory":
            [entry.get("hit_rate", 0.0) for entry in rounds],
        "requests_per_s_trajectory":
            [entry.get("requests_per_s", 0.0) for entry in rounds],
        "p99_ms_trajectory":
            [entry.get("p99_ms", 0.0) for entry in rounds],
    }


def summarize_corpus(report):
    return {
        "total": report.get("total", 0),
        "passed": report.get("passed", 0),
        "failed": report.get("failed", 0),
        "degraded": report.get("degraded", 0),
        "timeouts": report.get("timeouts", 0),
        "pass_rate": report.get("pass_rate", 0.0),
        "taxonomy": report.get("taxonomy", {}),
        "total_seconds": report.get("total_seconds", 0.0),
        "case_seconds_mean":
            report.get("timing", {}).get("case_seconds_mean", 0.0),
    }


def print_summary(mode, summary):
    if mode == "serve":
        trajectory = ", ".join(
            f"{rate:.3f}" for rate in summary["hit_rate_trajectory"])
        print(f"serve: cold p50 {summary['cold_p50_ms']:.1f} ms -> "
              f"warm p50 {summary['warm_p50_ms']:.1f} ms "
              f"({summary['warm_speedup']:.2f}x), "
              f"hit rate [{trajectory}], outputs "
              f"{'byte-identical' if summary['deterministic'] else 'DIVERGED'}")
        return
    if mode == "corpus":
        print(f"corpus: {summary['passed']}/{summary['total']} passed "
              f"(pass rate {summary['pass_rate']:.4f}), "
              f"{summary['failed']} failed, "
              f"{summary['timeouts']} timed out, "
              f"{summary['degraded']} degraded "
              f"in {summary['total_seconds']:.1f}s")
        for kind, count in sorted(summary["taxonomy"].items()):
            print(f"  {kind}: {count}")
        return
    if mode != "passes":
        for base, entry in sorted(summary.items()):
            if "naive_time" in entry:
                print(f"{base}: {entry['speedup']:.2f}x "
                      f"(naive {entry['naive_time']:.0f} -> "
                      f"indexed {entry['indexed_time']:.0f})")
            elif "arms" in entry:
                print(f"{base}: baseline jobs:1 = "
                      f"{entry['baseline_time']:.1f}")
                for arm, stats in sorted(entry["arms"].items()):
                    print(f"  {arm}: {stats['speedup']:.2f}x "
                          f"({stats['time']:.1f})")
            elif "counters" in entry:
                counters = ", ".join(
                    f"{key}={value:.4g}" for key, value in
                    sorted(entry["counters"].items()))
                print(f"{base}: {counters}")
        return
    for base, entry in sorted(summary.items()):
        if base == "schedule_budget":
            continue
        print(f"{base}: baseline cache:0/jobs:1 = "
              f"{entry['baseline_time']:.1f}")
        for arm, stats in sorted(entry["arms"].items()):
            print(f"  {arm}: {stats['speedup']:.2f}x "
                  f"({stats['time']:.1f})")
    schedule = summary.get("schedule_budget")
    if schedule:
        for point in schedule["budget_trajectory"]:
            print(f"schedule {point['arm']}: cost matched on "
                  f"{point['cost_matched']}/{point['kernels']} kernels,"
                  f" cold evals {point['baseline_cold_evals']:.0f} -> "
                  f"{point['cold_evals']:.0f} "
                  f"({point['eval_reduction']:.2f}x fewer)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default=None,
                        help="path to the benchmark binary (or the "
                             "seer-corpus binary with --mode corpus)")
    parser.add_argument("--mode",
                        choices=("egraph", "passes", "extract",
                                 "corpus", "serve"),
                        default="egraph")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<mode>.json)")
    parser.add_argument("--min-time", default="0.05s")
    parser.add_argument("--filter", default=None,
                        help="--benchmark_filter regex")
    parser.add_argument("--seeds", type=int, default=100,
                        help="corpus size (--mode corpus)")
    parser.add_argument("--report", default=None,
                        help="existing seer-corpus/micro_serve run "
                             "report to convert instead of running "
                             "the harness (--mode corpus/serve)")
    parser.add_argument("extra", nargs="*",
                        help="extra flags passed through to "
                             "seer-corpus or micro_serve after '--'")
    args = parser.parse_args()
    out_path = args.out or f"BENCH_{args.mode}.json"

    if args.mode == "serve":
        if args.report:
            with open(args.report) as f:
                report = json.load(f)
        elif args.bench:
            report = run_serve(args.bench, args.extra)
        else:
            raise SystemExit("--mode serve needs --bench or --report")
        out = {
            "generated_by": "tools/bench_to_json.py",
            "mode": "serve",
            "serve": report,
            "summary": summarize_serve(report),
        }
        with open(out_path, "w") as f:
            json.dump(out, f, indent=2)
            f.write("\n")
        print_summary("serve", out["summary"])
        print(f"wrote {out_path}")
        return 0

    if args.mode == "corpus":
        if args.report:
            with open(args.report) as f:
                report = json.load(f)
        elif args.bench:
            report = run_corpus(args.bench, args.seeds, args.extra)
        else:
            raise SystemExit("--mode corpus needs --bench or --report")
        out = {
            "generated_by": "tools/bench_to_json.py",
            "mode": "corpus",
            "corpus": report,
            "summary": summarize_corpus(report),
        }
        with open(out_path, "w") as f:
            json.dump(out, f, indent=2)
            f.write("\n")
        print_summary("corpus", out["summary"])
        print(f"wrote {out_path}")
        return 0

    if not args.bench:
        raise SystemExit("--bench is required")
    raw = run_benchmarks(args.bench, args.min_time, args.filter)
    benchmarks = [
        {key: bench[key]
         for key in ("name", "real_time", "cpu_time", "time_unit",
                     "iterations", "items_per_second", "label",
                     # micro_passes telemetry: cache behavior and the
                     # egg/MLIR split of each arm; the scheduler arms
                     # add the final extraction cost and deferrals.
                     "unions", "evals", "hits", "mlir_s", "egg_s",
                     "cost", "deferred",
                     # micro_extract telemetry: bound-analysis work and
                     # branch-and-bound search effort per arm.
                     "recomputed", "visited", "prunes", "expansions",
                     "exhausted")
         if key in bench}
        for bench in raw.get("benchmarks", [])
        if bench.get("run_type") != "aggregate"
    ]
    # "extract" uses the same naive:{0,1} arm pairing as "egraph".
    summarize = (summarize_passes if args.mode == "passes"
                 else summarize_egraph)
    summary = summarize(raw.get("benchmarks", []))
    if args.mode == "passes":
        schedule = summarize_schedule(raw.get("benchmarks", []))
        if schedule is not None:
            summary["schedule_budget"] = schedule
    out = {
        "generated_by": "tools/bench_to_json.py",
        "mode": args.mode,
        "context": {
            key: raw.get("context", {}).get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu",
                        "library_build_type")
        },
        "benchmarks": benchmarks,
        "summary": summary,
    }
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    print_summary(args.mode, out["summary"])
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
